package server

import (
	"bytes"
	"compress/gzip"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestAcceptsGzip pins the Accept-Encoding negotiation, including the
// explicit-refusal qvalues a proxy can send.
func TestAcceptsGzip(t *testing.T) {
	cases := []struct {
		header string
		want   bool
	}{
		{"", false},
		{"gzip", true},
		{"gzip, deflate, br", true},
		{"deflate, gzip;q=0.5", true},
		{"br;q=1.0, *;q=0.1", true},
		{"identity", false},
		{"gzip;q=0", false},
		{"gzip;q=0.000", false},
		{"deflate", false},
	}
	for _, c := range cases {
		r := httptest.NewRequest(http.MethodGet, "/v1/jobs/job-1/report.json", nil)
		if c.header != "" {
			r.Header.Set("Accept-Encoding", c.header)
		}
		if got := acceptsGzip(r); got != c.want {
			t.Errorf("acceptsGzip(%q) = %v, want %v", c.header, got, c.want)
		}
	}
}

// TestGzipCompressionPreservesETagSemantics is the compression
// acceptance test: for each heavy export endpoint, the gzip-negotiated
// response carries the same ETag and decompresses to the same bytes as
// the identity response, a matching If-None-Match still answers 304
// (body-free, encoding-free) under compression, and clients that did not
// negotiate keep getting identity bodies.
func TestGzipCompressionPreservesETagSemantics(t *testing.T) {
	_, ts, job := storeServer(t, Config{Workers: 1})
	// A second, minimal snapshot: diffing the full capture against it
	// yields a removal for nearly every flow — a diff body heavy enough
	// to be worth compressing, like a real regression between audits.
	job2 := runJob(t, ts, map[string][2]string{
		"child": {"after.har", deltaHAR(t, "https://api.quizlet.com/v1/profile?user_id=u123")},
		"name":  {"", "Quizlet"},
	})

	get := func(t *testing.T, path string, hdr map[string]string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	readAll := func(t *testing.T, resp *http.Response) []byte {
		t.Helper()
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	paths := map[string]string{
		"report.json": "/v1/jobs/" + job.ID + "/report.json",
		"report.csv":  "/v1/jobs/" + job.ID + "/report.csv",
		"diff":        "/v1/diff?from=" + job.SnapshotHash + "&to=" + job2.SnapshotHash,
	}
	for name, path := range paths {
		t.Run(name, func(t *testing.T) {
			// Identity baseline. (Setting Accept-Encoding explicitly
			// disables the transport's transparent decompression, so the
			// bodies and headers below are exactly what was on the wire.)
			plain := get(t, path, map[string]string{"Accept-Encoding": "identity"})
			plainBody := readAll(t, plain)
			etag := plain.Header.Get("ETag")
			if plain.StatusCode != http.StatusOK || etag == "" {
				t.Fatalf("identity GET = %d, ETag %q", plain.StatusCode, etag)
			}
			if enc := plain.Header.Get("Content-Encoding"); enc != "" {
				t.Fatalf("identity response has Content-Encoding %q", enc)
			}

			// The negotiated response: compressed on the wire, same ETag,
			// same bytes after decompression, smaller before it.
			zresp := get(t, path, map[string]string{"Accept-Encoding": "gzip"})
			zbody := readAll(t, zresp)
			if zresp.StatusCode != http.StatusOK {
				t.Fatalf("gzip GET = %d", zresp.StatusCode)
			}
			if enc := zresp.Header.Get("Content-Encoding"); enc != "gzip" {
				t.Fatalf("Content-Encoding = %q, want gzip", enc)
			}
			if vary := zresp.Header.Get("Vary"); vary != "Accept-Encoding" {
				t.Errorf("Vary = %q, want Accept-Encoding", vary)
			}
			if got := zresp.Header.Get("ETag"); got != etag {
				t.Errorf("compressed ETag = %q, identity ETag = %q; the validator must name the content, not the encoding", got, etag)
			}
			if len(zbody) >= len(plainBody) {
				t.Errorf("compressed body (%d bytes) is not smaller than identity (%d bytes)", len(zbody), len(plainBody))
			}
			zr, err := gzip.NewReader(bytes.NewReader(zbody))
			if err != nil {
				t.Fatal(err)
			}
			unzipped, err := io.ReadAll(zr)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(unzipped, plainBody) {
				t.Fatal("gzip body does not decompress to the identity body")
			}

			// Conditional GET under compression: the validator from either
			// representation revalidates, the 304 has no body and no
			// Content-Encoding, and nothing was compressed to produce it.
			cond := get(t, path, map[string]string{"Accept-Encoding": "gzip", "If-None-Match": etag})
			condBody := readAll(t, cond)
			if cond.StatusCode != http.StatusNotModified {
				t.Fatalf("conditional GET = %d, want 304", cond.StatusCode)
			}
			if len(condBody) != 0 {
				t.Errorf("304 carried %d body bytes", len(condBody))
			}
			if enc := cond.Header.Get("Content-Encoding"); enc != "" {
				t.Errorf("304 has Content-Encoding %q", enc)
			}
			if got := cond.Header.Get("ETag"); got != etag {
				t.Errorf("304 ETag = %q, want %q", got, etag)
			}
		})
	}
}
