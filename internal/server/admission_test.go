// Unit and chaos tests for the upload admission gates: the deadline-
// aware load shedder and the per-client rate limiter, plus the
// hot-path benchmarks the CI bench gate tracks.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"diffaudit/internal/faults"
)

// TestAdmissionEWMA pins the estimate math: the EWMA converges toward
// observed service times, and the queue-wait estimate is jobs-ahead
// divided over the workers, one EWMA each.
func TestAdmissionEWMA(t *testing.T) {
	var a admission
	if got := a.estimateWait(10, 2); got != 0 {
		t.Errorf("estimate with no history = %v, want 0 (admit optimistically)", got)
	}
	a.observe(800 * time.Millisecond)
	if got := time.Duration(a.ewmaNanos.Load()); got != 800*time.Millisecond {
		t.Errorf("first observation = %v, want 800ms (seeds the EWMA)", got)
	}
	// Repeated faster jobs pull the estimate down, weight 1/8 per step.
	for i := 0; i < 40; i++ {
		a.observe(100 * time.Millisecond)
	}
	ewma := time.Duration(a.ewmaNanos.Load())
	if ewma < 100*time.Millisecond || ewma > 120*time.Millisecond {
		t.Errorf("converged EWMA = %v, want ~100ms", ewma)
	}

	// 5 queued over 2 workers = 3 waves of one EWMA each.
	want := 3 * ewma
	if got := a.estimateWait(5, 2); got != want {
		t.Errorf("estimateWait(5,2) = %v, want %v", got, want)
	}
	if got := a.estimateWait(0, 2); got != 0 {
		t.Errorf("estimateWait(0,2) = %v, want 0", got)
	}
	// Negative and zero observations are ignored, not folded in.
	a.observe(-time.Second)
	if got := time.Duration(a.ewmaNanos.Load()); got != ewma {
		t.Errorf("EWMA moved on a negative observation: %v", got)
	}
}

// TestAdmissionShedsOnDeadline: with a job deadline configured and the
// "admit.slow" fault modeling an unbounded backlog, uploads are shed
// with the 503 envelope (adaptive hint) before any body is read —
// and admitted again the moment the backlog clears.
func TestAdmissionShedsOnDeadline(t *testing.T) {
	defer faults.Reset()
	srv := New(Config{Workers: 1, TempDir: t.TempDir(), JobTimeout: time.Second})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	faults.Set("admit.slow", faults.Plan{Err: errors.New("backlog"), Count: -1})
	resp := submit(t, ts, quizletParts(t))
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("shed submit = %d, Retry-After=%q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	var e struct {
		Error struct {
			Code       string `json:"code"`
			Message    string `json:"message"`
			RetryAfter int    `json:"retry_after"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if e.Error.Code != codeUnavailable || !strings.Contains(e.Error.Message, "load shed") || e.Error.RetryAfter < 1 {
		t.Fatalf("shed envelope = %+v", e.Error)
	}

	// healthz counts the shed.
	h := healthSnapshot(t, ts)
	adm, _ := h["admission"].(map[string]any)
	if adm == nil || adm["shed"].(float64) != 1 {
		t.Errorf("healthz admission = %+v, want shed=1", h["admission"])
	}

	// Backlog cleared: the same upload is admitted and completes.
	faults.Reset()
	if done := runJob(t, ts, quizletParts(t)); done.State != JobDone {
		t.Fatalf("post-shed job = %+v", done)
	}
}

// TestAdmissionNoDeadlineNeverSheds: without a JobTimeout there is no
// deadline to protect, so even an "infinite" backlog estimate must not
// reject uploads — the bounded queue is the only backpressure.
func TestAdmissionNoDeadlineNeverSheds(t *testing.T) {
	defer faults.Reset()
	faults.Set("admit.slow", faults.Plan{Err: errors.New("backlog"), Count: -1})
	srv := New(Config{Workers: 1, TempDir: t.TempDir()}) // no deadline
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	if done := runJob(t, ts, quizletParts(t)); done.State != JobDone {
		t.Fatalf("job without deadline = %+v, want done", done)
	}
}

// TestRateLimiterBuckets pins the token-bucket mechanics directly:
// burst, refill, per-key isolation, and the 429 header material.
func TestRateLimiterBuckets(t *testing.T) {
	l := newRateLimiter(10, 2) // 10/s, burst 2

	if v := l.take("a"); !v.ok || v.limit != 2 {
		t.Fatalf("first take = %+v", v)
	}
	if v := l.take("a"); !v.ok {
		t.Fatalf("burst take = %+v", v)
	}
	v := l.take("a")
	if v.ok {
		t.Fatal("third immediate take admitted past the burst")
	}
	if v.resetSeconds < 1 {
		t.Errorf("resetSeconds = %d, want >= 1", v.resetSeconds)
	}
	if l.limitedCount() != 1 {
		t.Errorf("limitedCount = %d, want 1", l.limitedCount())
	}
	// Another client has its own bucket.
	if v := l.take("b"); !v.ok {
		t.Errorf("independent client limited: %+v", v)
	}
	// Refill: back-date the bucket instead of sleeping.
	l.mu.Lock()
	l.buckets["a"].last = l.buckets["a"].last.Add(-time.Second)
	l.mu.Unlock()
	if v := l.take("a"); !v.ok {
		t.Errorf("take after refill window = %+v", v)
	}

	rec := httptest.NewRecorder()
	rateVerdict{limit: 2, remaining: 0, resetSeconds: 3}.writeHeaders(rec)
	for h, want := range map[string]string{
		"RateLimit-Limit": "2", "RateLimit-Remaining": "0",
		"RateLimit-Reset": "3", "Retry-After": "3",
	} {
		if got := rec.Header().Get(h); got != want {
			t.Errorf("%s = %q, want %q", h, got, want)
		}
	}

	// Disabled configurations are nil and always admit.
	if l := newRateLimiter(0, 5); l != nil {
		t.Error("rate 0 built a limiter")
	}
	var nilL *rateLimiter
	if v := nilL.take("x"); !v.ok || nilL.limitedCount() != 0 {
		t.Errorf("nil limiter verdict = %+v", v)
	}
}

// TestRateLimiterBoundedClients: the bucket map cannot grow without
// bound under client-ID churn.
func TestRateLimiterBoundedClients(t *testing.T) {
	l := newRateLimiter(1, 1)
	var key [8]byte
	for i := 0; i < 3*maxClients; i++ {
		for j, b := 0, i; j < len(key); j, b = j+1, b>>4 {
			key[j] = 'a' + byte(b&0xF)
		}
		l.take(string(key[:]))
	}
	l.mu.Lock()
	n := len(l.buckets)
	l.mu.Unlock()
	if n > maxClients {
		t.Errorf("bucket map grew to %d, cap is %d", n, maxClients)
	}
}

// TestRateLimit429 drives the limiter over HTTP: a client that exceeds
// its budget draws 429s with the envelope code and RateLimit headers,
// while a distinctly identified client sails through.
func TestRateLimit429(t *testing.T) {
	// Effectively no refill within the test; burst of 2 per client.
	srv := New(Config{Workers: 1, TempDir: t.TempDir(), RateLimit: 0.001, RateBurst: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	post := func(clientID string) *http.Response {
		t.Helper()
		var buf bytes.Buffer
		mw := newMultipart(t, &buf, quizletParts(t))
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/audits", &buf)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", mw)
		req.Header.Set("X-Client-ID", clientID)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	for i := 0; i < 2; i++ {
		resp := post("tenant-a")
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d = %d, want 202", i+1, resp.StatusCode)
		}
	}
	resp := post("tenant-a")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget submit = %d, want 429", resp.StatusCode)
	}
	for _, h := range []string{"RateLimit-Limit", "RateLimit-Remaining", "RateLimit-Reset", "Retry-After"} {
		if resp.Header.Get(h) == "" {
			t.Errorf("429 missing %s header", h)
		}
	}
	var e struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if e.Error.Code != codeRateLimited {
		t.Errorf("429 code = %q, want %q", e.Error.Code, codeRateLimited)
	}

	// A different client ID is a different bucket.
	other := post("tenant-b")
	other.Body.Close()
	if other.StatusCode != http.StatusAccepted {
		t.Errorf("other tenant = %d, want 202", other.StatusCode)
	}

	h := healthSnapshot(t, ts)
	adm, _ := h["admission"].(map[string]any)
	if adm == nil || adm["rate_limited"].(float64) < 1 {
		t.Errorf("healthz admission = %+v, want rate_limited >= 1", h["admission"])
	}
}

// newMultipart writes parts into buf and returns the Content-Type.
func newMultipart(t *testing.T, buf *bytes.Buffer, parts map[string][2]string) string {
	t.Helper()
	mw := multipart.NewWriter(buf)
	for field, fc := range parts {
		if fc[0] == "" {
			if err := mw.WriteField(field, fc[1]); err != nil {
				t.Fatal(err)
			}
			continue
		}
		fw, err := mw.CreateFormFile(field, fc[0])
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.WriteString(fw, fc[1]); err != nil {
			t.Fatal(err)
		}
	}
	mw.Close()
	return mw.FormDataContentType()
}

// TestClientKey: header identity wins, else the remote host without its
// ephemeral port.
func TestClientKey(t *testing.T) {
	r := httptest.NewRequest(http.MethodPost, "/v1/audits", nil)
	r.RemoteAddr = "198.51.100.7:40312"
	if got := clientKey(r); got != "198.51.100.7" {
		t.Errorf("clientKey = %q, want bare host", got)
	}
	r.Header.Set("X-Client-ID", "tenant-a")
	if got := clientKey(r); got != "tenant-a" {
		t.Errorf("clientKey with header = %q", got)
	}
}

// TestRetryAfterAdaptive: the 503 hint tracks the backlog estimate —
// floor 1s when idle, the estimated wait when loaded, capped at 5min.
func TestRetryAfterAdaptive(t *testing.T) {
	srv := New(Config{Workers: 1, TempDir: t.TempDir()})
	defer srv.Close()
	if got := retryAfterHint(srv.backlogWait()); got != 1 {
		t.Errorf("idle hint = %d, want 1", got)
	}
	// Simulate history: a monster EWMA. The queue is empty so the
	// estimate stays 0 → floor 1; a loaded estimate is clamped below.
	srv.admission.ewmaNanos.Store(int64(time.Hour))
	if got := srv.admission.estimateWait(4, 1); got != 4*time.Hour {
		t.Errorf("estimateWait = %v, want 4h", got)
	}
	if got := retryAfterHint(srv.backlogWait()); got != 1 {
		t.Errorf("hint with empty queue = %d, want 1", got)
	}
}

// TestRetryAfterHintFloorCap pins retryAfterHint's bounds: zero and
// sub-second estimates floor at 1s, mid-range estimates round up to
// whole seconds, and anything past five minutes caps at 300 — the same
// hint every 503 path derives from one hoisted backlog estimate.
func TestRetryAfterHintFloorCap(t *testing.T) {
	cases := []struct {
		wait time.Duration
		want int
	}{
		{0, 1},
		{10 * time.Millisecond, 1},
		{time.Second, 1},
		{1500 * time.Millisecond, 2},
		{90 * time.Second, 90},
		{300 * time.Second, 300},
		{301 * time.Second, 300},
		{time.Hour, 300},
	}
	for _, c := range cases {
		if got := retryAfterHint(c.wait); got != c.want {
			t.Errorf("retryAfterHint(%v) = %d, want %d", c.wait, got, c.want)
		}
	}
}

// BenchmarkAdmissionCheck measures the disarmed per-upload admission
// decision — one injection-point load, a channel length, and two atomic
// loads. This is on every POST /v1/audits; it must stay allocation-free
// and well under a microsecond.
func BenchmarkAdmissionCheck(b *testing.B) {
	srv := New(Config{Workers: 2, TempDir: b.TempDir(), JobTimeout: time.Second})
	defer srv.Close()
	srv.admission.ewmaNanos.Store(int64(50 * time.Millisecond))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if shed, _ := srv.shouldShed(); shed {
			b.Fatal("idle server shed")
		}
	}
}

// BenchmarkRateLimiter measures the disarmed (nil-limiter) fast path —
// the cost every deployment without -rate-limit pays per upload.
func BenchmarkRateLimiter(b *testing.B) {
	var l *rateLimiter
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := l.take("client"); !v.ok {
			b.Fatal("nil limiter rejected")
		}
	}
}

// BenchmarkRateLimiterArmed measures an active bucket take (mutex + map
// + clock read) — the per-upload cost when -rate-limit is set.
func BenchmarkRateLimiterArmed(b *testing.B) {
	l := newRateLimiter(1e12, 1<<30)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := l.take("client"); !v.ok {
			b.Fatal("unlimited bucket rejected")
		}
	}
}
