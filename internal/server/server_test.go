package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"diffaudit/internal/core"
	"diffaudit/internal/flows"
	"diffaudit/internal/har"
	"diffaudit/internal/report"
	"diffaudit/internal/services"
	"diffaudit/internal/synth"
)

// childHAR renders Quizlet's child web trace as HAR bytes.
func childHAR(t *testing.T) []byte {
	t.Helper()
	ds := synth.Generate(synth.Config{Scale: 0.01})
	data, err := ds.Service("Quizlet").EmitHAR(flows.Child).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// submit posts a multipart audit request built from field→(filename,
// content) parts and returns the response.
func submit(t *testing.T, ts *httptest.Server, parts map[string][2]string) *http.Response {
	t.Helper()
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	for field, fc := range parts {
		if fc[0] == "" { // value part
			if err := mw.WriteField(field, fc[1]); err != nil {
				t.Fatal(err)
			}
			continue
		}
		fw, err := mw.CreateFormFile(field, fc[0])
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.WriteString(fw, fc[1]); err != nil {
			t.Fatal(err)
		}
	}
	mw.Close()
	resp, err := http.Post(ts.URL+"/audit", mw.FormDataContentType(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// wait polls a job until it leaves the queued/running states.
func wait(t *testing.T, ts *httptest.Server, id string) Job {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var job Job
		if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if job.State == JobDone || job.State == JobFailed {
			return job
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("job did not finish")
	return Job{}
}

func decodeJob(t *testing.T, resp *http.Response) Job {
	t.Helper()
	defer resp.Body.Close()
	var job Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	return job
}

// TestAuditEndToEnd uploads a HAR capture for a known service and checks
// the served report is byte-identical to a direct pipeline run over the
// same capture.
func TestAuditEndToEnd(t *testing.T) {
	srv := New(Config{TempDir: t.TempDir()})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	harData := childHAR(t)
	resp := submit(t, ts, map[string][2]string{
		"child": {"child.har", string(harData)},
		"name":  {"", "Quizlet"},
	})
	if resp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: %d: %s", resp.StatusCode, body)
	}
	job := decodeJob(t, resp)
	if job.State != JobQueued || job.Files != 1 {
		t.Fatalf("job = %+v", job)
	}

	done := wait(t, ts, job.ID)
	if done.State != JobDone {
		t.Fatalf("job failed: %s", done.Error)
	}

	// Served report vs direct pipeline run.
	gotResp, err := http.Get(ts.URL + "/jobs/" + job.ID + "/report.json")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(gotResp.Body)
	gotResp.Body.Close()

	h, err := har.Parse(harData)
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := services.ByName("Quizlet")
	id := core.ServiceIdentity{Name: spec.Name, Owner: spec.Owner, FirstPartyESLDs: spec.FirstPartyESLDs}
	res := core.NewPipeline().AnalyzeRecords(id, core.FromHAR(h, flows.Child, flows.Web))
	want, err := report.ExportJSON([]*core.ServiceResult{res})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bytes.TrimSpace(got), bytes.TrimSpace(want)) {
		t.Error("served report.json differs from direct pipeline export")
	}

	// CSV renders with the header and at least one flow.
	csvResp, err := http.Get(ts.URL + "/jobs/" + job.ID + "/report.csv")
	if err != nil {
		t.Fatal(err)
	}
	csvBody, _ := io.ReadAll(csvResp.Body)
	csvResp.Body.Close()
	if !strings.HasPrefix(string(csvBody), "service,trace,") || strings.Count(string(csvBody), "\n") < 2 {
		t.Errorf("csv export looks wrong: %.120s", csvBody)
	}
}

// TestGuessedIdentity audits under an unknown name: the most-contacted
// eSLD must become the first party via the streaming identity guess.
func TestGuessedIdentity(t *testing.T) {
	srv := New(Config{TempDir: t.TempDir()})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp := submit(t, ts, map[string][2]string{
		"child": {"c.har", string(childHAR(t))},
		"name":  {"", "mystery-service"},
	})
	job := decodeJob(t, resp)
	done := wait(t, ts, job.ID)
	if done.State != JobDone {
		t.Fatalf("job failed: %s", done.Error)
	}
	res, err := srv.Result(job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.Identity.Name != "mystery-service" || len(res.Identity.FirstPartyESLDs) != 1 {
		t.Fatalf("identity = %+v", res.Identity)
	}
}

// TestSubmitValidation covers the rejection paths.
func TestSubmitValidation(t *testing.T) {
	srv := New(Config{TempDir: t.TempDir()})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	cases := []struct {
		name  string
		parts map[string][2]string
		want  int
	}{
		{"no files", map[string][2]string{"name": {"", "x"}}, http.StatusBadRequest},
		{"bad field", map[string][2]string{"grownup": {"a.har", "{}"}}, http.StatusBadRequest},
		{"bad extension", map[string][2]string{"child": {"a.txt", "{}"}}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp := submit(t, ts, tc.parts)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}

	// Unknown job and unready report.
	for path, want := range map[string]int{
		"/jobs/nope":             http.StatusNotFound,
		"/jobs/nope/report.json": http.StatusNotFound,
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("GET %s: %d, want %d", path, resp.StatusCode, want)
		}
	}
}

// TestFailedJob uploads a corrupt capture and expects a failed state whose
// report returns 409.
func TestFailedJob(t *testing.T) {
	srv := New(Config{TempDir: t.TempDir()})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp := submit(t, ts, map[string][2]string{"child": {"bad.har", "not json at all"}})
	job := decodeJob(t, resp)
	done := wait(t, ts, job.ID)
	if done.State != JobFailed || done.Error == "" {
		t.Fatalf("job = %+v", done)
	}
	rresp, err := http.Get(ts.URL + "/jobs/" + job.ID + "/report.json")
	if err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusConflict {
		t.Errorf("report of failed job: %d, want 409", rresp.StatusCode)
	}
}

// TestQueueBackpressure fills the bounded queue behind a gated pipeline
// and expects 503 for the overflow submission.
func TestQueueBackpressure(t *testing.T) {
	gate := make(chan struct{})
	var once sync.Once
	defer once.Do(func() { close(gate) })
	srv := New(Config{
		Workers:    1,
		QueueDepth: 1,
		TempDir:    t.TempDir(),
		NewPipeline: func() *core.Pipeline {
			<-gate
			return core.NewPipeline()
		},
	})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	harData := string(childHAR(t))
	ids := make([]string, 0, 2)
	// First job occupies the worker (blocked on the gate); second sits in
	// the queue. The worker may not have claimed the first job yet, so
	// allow one extra submission before asserting overflow.
	overflowed := false
	for i := 0; i < 4; i++ {
		resp := submit(t, ts, map[string][2]string{"child": {"c.har", harData}, "name": {"", "Quizlet"}})
		switch resp.StatusCode {
		case http.StatusAccepted:
			ids = append(ids, decodeJob(t, resp).ID)
		case http.StatusServiceUnavailable:
			resp.Body.Close()
			overflowed = true
		default:
			t.Fatalf("submit %d: %d", i, resp.StatusCode)
		}
		if overflowed {
			break
		}
	}
	if !overflowed {
		t.Error("queue never overflowed at depth 1")
	}
	once.Do(func() { close(gate) })
	for _, id := range ids {
		if done := wait(t, ts, id); done.State != JobDone {
			t.Errorf("job %s: %s (%s)", id, done.State, done.Error)
		}
	}
}

// TestConcurrentSubmissions hammers the server from many goroutines — the
// CI -race step runs this to prove the job queue is data-race free.
func TestConcurrentSubmissions(t *testing.T) {
	srv := New(Config{Workers: 4, QueueDepth: 64, TempDir: t.TempDir()})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	harData := string(childHAR(t))
	const n = 8
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			resp := submit(t, ts, map[string][2]string{
				"child": {"c.har", harData},
				"name":  {"", fmt.Sprintf("svc-%d", g)},
			})
			if resp.StatusCode != http.StatusAccepted {
				resp.Body.Close()
				errs <- fmt.Errorf("goroutine %d: submit %d", g, resp.StatusCode)
				return
			}
			job := decodeJob(t, resp)
			// Interleave list reads with the polling.
			lresp, err := http.Get(ts.URL + "/jobs")
			if err == nil {
				io.Copy(io.Discard, lresp.Body)
				lresp.Body.Close()
			}
			done := wait(t, ts, job.ID)
			if done.State != JobDone {
				errs <- fmt.Errorf("goroutine %d: %s (%s)", g, done.State, done.Error)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Jobs int `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Jobs != n {
		t.Errorf("healthz jobs = %d, want %d", health.Jobs, n)
	}
}

// TestJobEviction checks finished jobs are evicted past MaxJobs while the
// newest stay fetchable — the long-lived server's memory bound.
func TestJobEviction(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 8, MaxJobs: 3, TempDir: t.TempDir()})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	harData := string(childHAR(t))
	var ids []string
	for i := 0; i < 5; i++ {
		resp := submit(t, ts, map[string][2]string{"child": {"c.har", harData}, "name": {"", "Quizlet"}})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %d", i, resp.StatusCode)
		}
		job := decodeJob(t, resp)
		ids = append(ids, job.ID)
		wait(t, ts, job.ID) // serialize so earlier jobs are evictable
	}

	resp, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Jobs []Job `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Jobs) > 3 {
		t.Errorf("retained %d jobs, cap is 3", len(list.Jobs))
	}
	// The newest job always survives.
	if _, err := srv.Result(ids[len(ids)-1]); err != nil {
		t.Errorf("newest job evicted: %v", err)
	}
	// The oldest is gone.
	r, err := http.Get(ts.URL + "/jobs/" + ids[0])
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Errorf("oldest job still present: %d", r.StatusCode)
	}
}

// TestJobEvictionOldestFirstAnd404Reports pins the retention policy: when
// the cap is exceeded, finished jobs are evicted strictly oldest-first,
// and every endpoint for an evicted ID answers 404 — never a stale report.
func TestJobEvictionOldestFirstAnd404Reports(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 8, MaxJobs: 2, TempDir: t.TempDir()})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	harData := string(childHAR(t))
	var ids []string
	for i := 0; i < 4; i++ {
		resp := submit(t, ts, map[string][2]string{"child": {"c.har", harData}, "name": {"", "Quizlet"}})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %d", i, resp.StatusCode)
		}
		job := decodeJob(t, resp)
		ids = append(ids, job.ID)
		if done := wait(t, ts, job.ID); done.State != JobDone {
			t.Fatalf("job %d: %+v", i, done)
		}
	}

	status := func(path string) int {
		t.Helper()
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		return r.StatusCode
	}

	// The two oldest are gone from every endpoint; the two newest serve.
	for _, id := range ids[:2] {
		for _, path := range []string{"/jobs/" + id, "/jobs/" + id + "/report.json", "/jobs/" + id + "/report.csv"} {
			if code := status(path); code != http.StatusNotFound {
				t.Errorf("evicted %s: %d, want 404", path, code)
			}
		}
	}
	for _, id := range ids[2:] {
		if code := status("/jobs/" + id); code != http.StatusOK {
			t.Errorf("retained /jobs/%s: %d, want 200", id, code)
		}
		if code := status("/jobs/" + id + "/report.json"); code != http.StatusOK {
			t.Errorf("retained report %s: %d, want 200", id, code)
		}
	}

	// The listing reflects the same order: exactly the newest two, oldest
	// first among the survivors.
	r, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Jobs []Job `json:"jobs"`
	}
	if err := json.NewDecoder(r.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if len(list.Jobs) != 2 || list.Jobs[0].ID != ids[2] || list.Jobs[1].ID != ids[3] {
		t.Errorf("retained jobs = %+v, want [%s %s]", list.Jobs, ids[2], ids[3])
	}
}

// TestPersonasEndpointAndCustomUpload checks GET /personas lists the
// registry and rule packs, and that uploads grouped under a registered
// custom persona's name audit end to end into that persona's trace.
func TestPersonasEndpointAndCustomUpload(t *testing.T) {
	if _, err := flows.RegisterPersona(flows.PersonaInfo{
		Name: "Server Kid", Aliases: []string{"server-kid"},
		AgeKnown: true, AgeMin: 6, AgeMax: 9, LoggedIn: true,
	}); err != nil {
		t.Fatal(err)
	}

	srv := New(Config{TempDir: t.TempDir()})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/personas")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Personas []struct {
			Name    string `json:"name"`
			Builtin bool   `json:"builtin"`
		} `json:"personas"`
		RulePacks []string `json:"rule_packs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	names := map[string]bool{}
	for _, p := range listing.Personas {
		names[p.Name] = p.Builtin
	}
	if b, ok := names["Child"]; !ok || !b {
		t.Errorf("personas listing = %+v, missing built-in Child", listing.Personas)
	}
	if b, ok := names["Server Kid"]; !ok || b {
		t.Errorf("personas listing = %+v, missing custom Server Kid", listing.Personas)
	}
	packs := strings.Join(listing.RulePacks, ",")
	for _, want := range []string{"coppa", "ccpa", "gdpr"} {
		if !strings.Contains(packs, want) {
			t.Errorf("rule_packs = %v, missing %q", listing.RulePacks, want)
		}
	}

	// Upload a capture under the custom persona's alias.
	resp = submit(t, ts, map[string][2]string{
		"server-kid": {"kid.har", string(childHAR(t))},
		"name":       {"", "Quizlet"},
	})
	if resp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit under custom persona: %d: %s", resp.StatusCode, body)
	}
	job := decodeJob(t, resp)
	if done := wait(t, ts, job.ID); done.State != JobDone {
		t.Fatalf("job = %+v", done)
	}
	rep, err := http.Get(ts.URL + "/jobs/" + job.ID + "/report.json")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(rep.Body)
	rep.Body.Close()
	if !strings.Contains(string(body), `"trace": "Server Kid"`) {
		t.Error("served report does not group flows under the custom persona")
	}
}
