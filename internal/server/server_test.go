package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"diffaudit/internal/core"
	"diffaudit/internal/flows"
	"diffaudit/internal/har"
	"diffaudit/internal/report"
	"diffaudit/internal/services"
	"diffaudit/internal/store"
	"diffaudit/internal/synth"
)

// childHAR renders Quizlet's child web trace as HAR bytes.
func childHAR(t *testing.T) []byte {
	t.Helper()
	ds := synth.Generate(synth.Config{Scale: 0.01})
	data, err := ds.Service("Quizlet").EmitHAR(flows.Child).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// submit posts a multipart audit request built from field→(filename,
// content) parts and returns the response.
func submit(t *testing.T, ts *httptest.Server, parts map[string][2]string) *http.Response {
	t.Helper()
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	for field, fc := range parts {
		if fc[0] == "" { // value part
			if err := mw.WriteField(field, fc[1]); err != nil {
				t.Fatal(err)
			}
			continue
		}
		fw, err := mw.CreateFormFile(field, fc[0])
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.WriteString(fw, fc[1]); err != nil {
			t.Fatal(err)
		}
	}
	mw.Close()
	resp, err := http.Post(ts.URL+"/audit", mw.FormDataContentType(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// wait polls a job until it leaves the queued/running states.
func wait(t *testing.T, ts *httptest.Server, id string) Job {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var job Job
		if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if job.State.Terminal() {
			return job
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("job did not finish")
	return Job{}
}

func decodeJob(t *testing.T, resp *http.Response) Job {
	t.Helper()
	defer resp.Body.Close()
	var job Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	return job
}

// TestAuditEndToEnd uploads a HAR capture for a known service and checks
// the served report is byte-identical to a direct pipeline run over the
// same capture.
func TestAuditEndToEnd(t *testing.T) {
	srv := New(Config{TempDir: t.TempDir()})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	harData := childHAR(t)
	resp := submit(t, ts, map[string][2]string{
		"child": {"child.har", string(harData)},
		"name":  {"", "Quizlet"},
	})
	if resp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: %d: %s", resp.StatusCode, body)
	}
	job := decodeJob(t, resp)
	if job.State != JobQueued || job.Files != 1 {
		t.Fatalf("job = %+v", job)
	}

	done := wait(t, ts, job.ID)
	if done.State != JobDone {
		t.Fatalf("job failed: %s", done.Error)
	}

	// Served report vs direct pipeline run.
	gotResp, err := http.Get(ts.URL + "/jobs/" + job.ID + "/report.json")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(gotResp.Body)
	gotResp.Body.Close()

	h, err := har.Parse(harData)
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := services.ByName("Quizlet")
	id := core.ServiceIdentity{Name: spec.Name, Owner: spec.Owner, FirstPartyESLDs: spec.FirstPartyESLDs}
	res := core.NewPipeline().AnalyzeRecords(id, core.FromHAR(h, flows.Child, flows.Web))
	want, err := report.ExportJSON([]*core.ServiceResult{res})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bytes.TrimSpace(got), bytes.TrimSpace(want)) {
		t.Error("served report.json differs from direct pipeline export")
	}

	// CSV renders with the header and at least one flow.
	csvResp, err := http.Get(ts.URL + "/jobs/" + job.ID + "/report.csv")
	if err != nil {
		t.Fatal(err)
	}
	csvBody, _ := io.ReadAll(csvResp.Body)
	csvResp.Body.Close()
	if !strings.HasPrefix(string(csvBody), "service,trace,") || strings.Count(string(csvBody), "\n") < 2 {
		t.Errorf("csv export looks wrong: %.120s", csvBody)
	}
}

// TestGuessedIdentity audits under an unknown name: the most-contacted
// eSLD must become the first party via the streaming identity guess.
func TestGuessedIdentity(t *testing.T) {
	srv := New(Config{TempDir: t.TempDir()})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp := submit(t, ts, map[string][2]string{
		"child": {"c.har", string(childHAR(t))},
		"name":  {"", "mystery-service"},
	})
	job := decodeJob(t, resp)
	done := wait(t, ts, job.ID)
	if done.State != JobDone {
		t.Fatalf("job failed: %s", done.Error)
	}
	res, err := srv.Result(job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.Identity.Name != "mystery-service" || len(res.Identity.FirstPartyESLDs) != 1 {
		t.Fatalf("identity = %+v", res.Identity)
	}
}

// TestSubmitValidation covers the rejection paths.
func TestSubmitValidation(t *testing.T) {
	srv := New(Config{TempDir: t.TempDir()})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	cases := []struct {
		name  string
		parts map[string][2]string
		want  int
	}{
		{"no files", map[string][2]string{"name": {"", "x"}}, http.StatusBadRequest},
		{"bad field", map[string][2]string{"grownup": {"a.har", "{}"}}, http.StatusBadRequest},
		{"bad extension", map[string][2]string{"child": {"a.txt", "{}"}}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp := submit(t, ts, tc.parts)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}

	// Unknown job and unready report.
	for path, want := range map[string]int{
		"/jobs/nope":             http.StatusNotFound,
		"/jobs/nope/report.json": http.StatusNotFound,
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("GET %s: %d, want %d", path, resp.StatusCode, want)
		}
	}
}

// TestFailedJob uploads a corrupt capture and expects a failed state whose
// report returns 409.
func TestFailedJob(t *testing.T) {
	srv := New(Config{TempDir: t.TempDir()})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp := submit(t, ts, map[string][2]string{"child": {"bad.har", "not json at all"}})
	job := decodeJob(t, resp)
	done := wait(t, ts, job.ID)
	if done.State != JobFailed || done.Error == "" {
		t.Fatalf("job = %+v", done)
	}
	rresp, err := http.Get(ts.URL + "/jobs/" + job.ID + "/report.json")
	if err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusConflict {
		t.Errorf("report of failed job: %d, want 409", rresp.StatusCode)
	}
}

// TestQueueBackpressure fills the bounded queue behind a gated pipeline
// and expects 503 for the overflow submission.
func TestQueueBackpressure(t *testing.T) {
	gate := make(chan struct{})
	var once sync.Once
	defer once.Do(func() { close(gate) })
	srv := New(Config{
		Workers:    1,
		QueueDepth: 1,
		TempDir:    t.TempDir(),
		NewPipeline: func() *core.Pipeline {
			<-gate
			return core.NewPipeline()
		},
	})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	harData := string(childHAR(t))
	ids := make([]string, 0, 2)
	// First job occupies the worker (blocked on the gate); second sits in
	// the queue. The worker may not have claimed the first job yet, so
	// allow one extra submission before asserting overflow.
	overflowed := false
	for i := 0; i < 4; i++ {
		resp := submit(t, ts, map[string][2]string{"child": {"c.har", harData}, "name": {"", "Quizlet"}})
		switch resp.StatusCode {
		case http.StatusAccepted:
			ids = append(ids, decodeJob(t, resp).ID)
		case http.StatusServiceUnavailable:
			resp.Body.Close()
			overflowed = true
		default:
			t.Fatalf("submit %d: %d", i, resp.StatusCode)
		}
		if overflowed {
			break
		}
	}
	if !overflowed {
		t.Error("queue never overflowed at depth 1")
	}
	once.Do(func() { close(gate) })
	for _, id := range ids {
		if done := wait(t, ts, id); done.State != JobDone {
			t.Errorf("job %s: %s (%s)", id, done.State, done.Error)
		}
	}
}

// TestConcurrentSubmissions hammers the server from many goroutines — the
// CI -race step runs this to prove the job queue is data-race free.
func TestConcurrentSubmissions(t *testing.T) {
	srv := New(Config{Workers: 4, QueueDepth: 64, TempDir: t.TempDir()})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	harData := string(childHAR(t))
	const n = 8
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			resp := submit(t, ts, map[string][2]string{
				"child": {"c.har", harData},
				"name":  {"", fmt.Sprintf("svc-%d", g)},
			})
			if resp.StatusCode != http.StatusAccepted {
				resp.Body.Close()
				errs <- fmt.Errorf("goroutine %d: submit %d", g, resp.StatusCode)
				return
			}
			job := decodeJob(t, resp)
			// Interleave list reads with the polling.
			lresp, err := http.Get(ts.URL + "/jobs")
			if err == nil {
				io.Copy(io.Discard, lresp.Body)
				lresp.Body.Close()
			}
			done := wait(t, ts, job.ID)
			if done.State != JobDone {
				errs <- fmt.Errorf("goroutine %d: %s (%s)", g, done.State, done.Error)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Jobs int `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Jobs != n {
		t.Errorf("healthz jobs = %d, want %d", health.Jobs, n)
	}
}

// TestJobEviction checks finished jobs are evicted past MaxJobs while the
// newest stay fetchable — the long-lived server's memory bound.
func TestJobEviction(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 8, MaxJobs: 3, TempDir: t.TempDir()})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	harData := string(childHAR(t))
	var ids []string
	for i := 0; i < 5; i++ {
		resp := submit(t, ts, map[string][2]string{"child": {"c.har", harData}, "name": {"", "Quizlet"}})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %d", i, resp.StatusCode)
		}
		job := decodeJob(t, resp)
		ids = append(ids, job.ID)
		wait(t, ts, job.ID) // serialize so earlier jobs are evictable
	}

	resp, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Jobs []Job `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Jobs) > 3 {
		t.Errorf("retained %d jobs, cap is 3", len(list.Jobs))
	}
	// The newest job always survives.
	if _, err := srv.Result(ids[len(ids)-1]); err != nil {
		t.Errorf("newest job evicted: %v", err)
	}
	// The oldest is gone.
	r, err := http.Get(ts.URL + "/jobs/" + ids[0])
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Errorf("oldest job still present: %d", r.StatusCode)
	}
}

// TestJobEvictionOldestFirstAnd404Reports pins the memory-only retention
// policy (no snapshot store configured): when the cap is exceeded,
// finished jobs are evicted strictly oldest-first, and every endpoint for
// an evicted ID answers 404 — never a stale report. With a Store
// configured, the report endpoints keep serving evicted IDs instead; see
// TestEvictedJobServedFromStore.
func TestJobEvictionOldestFirstAnd404Reports(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 8, MaxJobs: 2, TempDir: t.TempDir()})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	harData := string(childHAR(t))
	var ids []string
	for i := 0; i < 4; i++ {
		resp := submit(t, ts, map[string][2]string{"child": {"c.har", harData}, "name": {"", "Quizlet"}})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %d", i, resp.StatusCode)
		}
		job := decodeJob(t, resp)
		ids = append(ids, job.ID)
		if done := wait(t, ts, job.ID); done.State != JobDone {
			t.Fatalf("job %d: %+v", i, done)
		}
	}

	status := func(path string) int {
		t.Helper()
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		return r.StatusCode
	}

	// The two oldest are gone from every endpoint; the two newest serve.
	for _, id := range ids[:2] {
		for _, path := range []string{"/jobs/" + id, "/jobs/" + id + "/report.json", "/jobs/" + id + "/report.csv"} {
			if code := status(path); code != http.StatusNotFound {
				t.Errorf("evicted %s: %d, want 404", path, code)
			}
		}
	}
	for _, id := range ids[2:] {
		if code := status("/jobs/" + id); code != http.StatusOK {
			t.Errorf("retained /jobs/%s: %d, want 200", id, code)
		}
		if code := status("/jobs/" + id + "/report.json"); code != http.StatusOK {
			t.Errorf("retained report %s: %d, want 200", id, code)
		}
	}

	// The listing reflects the same order: exactly the newest two, oldest
	// first among the survivors.
	r, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Jobs []Job `json:"jobs"`
	}
	if err := json.NewDecoder(r.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if len(list.Jobs) != 2 || list.Jobs[0].ID != ids[2] || list.Jobs[1].ID != ids[3] {
		t.Errorf("retained jobs = %+v, want [%s %s]", list.Jobs, ids[2], ids[3])
	}
}

// getBody fetches a path, returning status and body.
func getBody(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp.StatusCode, body
}

// runJob submits the given parts and waits for the job to finish.
func runJob(t *testing.T, ts *httptest.Server, parts map[string][2]string) Job {
	t.Helper()
	resp := submit(t, ts, parts)
	if resp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: %d: %s", resp.StatusCode, body)
	}
	job := decodeJob(t, resp)
	done := wait(t, ts, job.ID)
	if done.State != JobDone {
		t.Fatalf("job %s failed: %s", job.ID, done.Error)
	}
	return done
}

// TestEvictedJobServedFromStore pins the stored-200 semantics: with a
// Store configured, eviction drops only the in-memory Job — /jobs/{id}
// answers 404 for an evicted ID, but both report endpoints keep serving
// the persisted snapshot byte-identically.
func TestEvictedJobServedFromStore(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 8, MaxJobs: 2, TempDir: t.TempDir(), Store: store.NewMemStore()})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	harData := string(childHAR(t))
	var ids []string
	var preEvictionJSON, preEvictionCSV []byte
	for i := 0; i < 4; i++ {
		job := runJob(t, ts, map[string][2]string{"child": {"c.har", harData}, "name": {"", "Quizlet"}})
		ids = append(ids, job.ID)
		if job.SnapshotHash == "" || job.SnapshotSeq == 0 {
			t.Fatalf("finished job carries no snapshot ref: %+v", job)
		}
		if i == 0 {
			_, preEvictionJSON = getBody(t, ts, "/jobs/"+job.ID+"/report.json")
			_, preEvictionCSV = getBody(t, ts, "/jobs/"+job.ID+"/report.csv")
		}
	}

	// The oldest job is evicted from memory...
	if code, _ := getBody(t, ts, "/jobs/"+ids[0]); code != http.StatusNotFound {
		t.Errorf("evicted /jobs/%s: %d, want 404", ids[0], code)
	}
	// ...but its reports still serve, byte-identically, from the store.
	code, gotJSON := getBody(t, ts, "/jobs/"+ids[0]+"/report.json")
	if code != http.StatusOK || !bytes.Equal(gotJSON, preEvictionJSON) {
		t.Errorf("evicted report.json: %d, identical=%v", code, bytes.Equal(gotJSON, preEvictionJSON))
	}
	code, gotCSV := getBody(t, ts, "/jobs/"+ids[0]+"/report.csv")
	if code != http.StatusOK || !bytes.Equal(gotCSV, preEvictionCSV) {
		t.Errorf("evicted report.csv: %d, identical=%v", code, bytes.Equal(gotCSV, preEvictionCSV))
	}
	// The programmatic accessor agrees.
	if _, err := srv.Result(ids[0]); err != nil {
		t.Errorf("Result(%s) after eviction: %v", ids[0], err)
	}

	// The job endpoints must match stored snapshots by job ID only: a
	// bare sequence number or hash prefix is not a job and stays 404.
	snaps, err := srv.cfg.Store.List()
	if err != nil || len(snaps) == 0 {
		t.Fatalf("store listing: %v", err)
	}
	for _, ref := range []string{"1", snaps[0].Hash[:8]} {
		if code, _ := getBody(t, ts, "/jobs/"+ref+"/report.json"); code != http.StatusNotFound {
			t.Errorf("/jobs/%s/report.json resolved a non-job store reference: %d", ref, code)
		}
	}
}

// failingStore wraps a Store whose Put always errors — the disk-full case.
type failingStore struct {
	store.Store
}

func (f failingStore) Put(jobID string, r *core.ServiceResult) (store.Meta, error) {
	return store.Meta{}, errors.New("disk full")
}

// TestSnapshotFailureBlocksEviction: when the store cannot persist a
// result, the job records SnapshotError and is retained past MaxJobs —
// the in-memory copy is the only one, and eviction must not destroy it.
func TestSnapshotFailureBlocksEviction(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 8, MaxJobs: 2, TempDir: t.TempDir(), Store: failingStore{store.NewMemStore()}})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	harData := string(childHAR(t))
	var ids []string
	for i := 0; i < 4; i++ {
		job := runJob(t, ts, map[string][2]string{"child": {"c.har", harData}, "name": {"", "Quizlet"}})
		if job.SnapshotError == "" || job.SnapshotHash != "" {
			t.Fatalf("job %+v: want SnapshotError and no hash", job)
		}
		ids = append(ids, job.ID)
	}
	// Every job survives the cap: none were persisted, so none may be
	// evicted, and every report still serves from memory.
	for _, id := range ids {
		if code, _ := getBody(t, ts, "/jobs/"+id+"/report.json"); code != http.StatusOK {
			t.Errorf("unpersisted job %s evicted: report %d, want 200", id, code)
		}
	}
}

// brokenGetStore lists one snapshot for job-9 but fails to serve it —
// the deleted/bit-rotted snapshot file case.
type brokenGetStore struct {
	store.Store
}

func (b brokenGetStore) List() ([]store.Meta, error) {
	return []store.Meta{{Seq: 1, Hash: "deadbeef", JobID: "job-9", Service: "X"}}, nil
}

func (b brokenGetStore) Get(ref string) (*core.ServiceResult, store.Meta, error) {
	return nil, store.Meta{}, errors.New("snapshot checksum mismatch")
}

// TestUnreadableStoredSnapshotIs500: a job whose snapshot exists but
// cannot be read is a storage failure, not a missing job — the report
// endpoint must answer 500, never a masking 404.
func TestUnreadableStoredSnapshotIs500(t *testing.T) {
	srv := New(Config{TempDir: t.TempDir(), Store: brokenGetStore{store.NewMemStore()}})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	code, body := getBody(t, ts, "/jobs/job-9/report.json")
	if code != http.StatusInternalServerError || !strings.Contains(string(body), "checksum") {
		t.Errorf("unreadable snapshot: %d %s, want 500 with the store error", code, body)
	}
	// A job that never existed anywhere still answers 404.
	if code, _ := getBody(t, ts, "/jobs/job-77/report.json"); code != http.StatusNotFound {
		t.Errorf("unknown job: %d, want 404", code)
	}
	// The diff endpoint draws the same line: a serving failure is 500,
	// not a masking 404 (unresolvable refs stay 404, see
	// TestSnapshotsAndDiffEndpoints).
	if code, body := getBody(t, ts, "/diff?from=1&to=1"); code != http.StatusInternalServerError {
		t.Errorf("diff over unreadable snapshot: %d %s, want 500", code, body)
	}
}

// deltaHAR builds a minimal HAR capture from request URLs, so tests can
// inject precise flow deltas.
func deltaHAR(t *testing.T, urls ...string) string {
	t.Helper()
	h := har.New()
	for _, u := range urls {
		h.Log.Entries = append(h.Log.Entries, har.Entry{
			Request: har.Request{Method: "GET", URL: u, HTTPVersion: "HTTP/1.1"},
		})
	}
	data, err := h.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestSnapshotsAndDiffEndpoints runs the end-to-end longitudinal
// acceptance path: two audits with an injected flow delta persisted
// through an FSStore, a full server restart between them, and GET /diff
// reporting exactly the delta — identical to a no-restart diff computed
// directly over the pipeline results.
func TestSnapshotsAndDiffEndpoints(t *testing.T) {
	dir := t.TempDir()
	baseURL := "https://api.quizlet.com/v1/profile?user_id=u123"
	injectedURL := "https://stats.g.doubleclick.net/collect?advertising_id=adid9"

	st1, err := store.OpenFSStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv1 := New(Config{TempDir: t.TempDir(), Store: st1})
	ts1 := httptest.NewServer(srv1)
	job1 := runJob(t, ts1, map[string][2]string{
		"child": {"before.har", deltaHAR(t, baseURL)},
		"name":  {"", "Quizlet"},
	})
	ts1.Close()
	srv1.Close()

	// Restart: fresh store over the same directory, fresh server.
	st2, err := store.OpenFSStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := New(Config{TempDir: t.TempDir(), Store: st2})
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()

	job2 := runJob(t, ts2, map[string][2]string{
		"child": {"after.har", deltaHAR(t, baseURL, injectedURL)},
		"name":  {"", "Quizlet"},
	})
	if job2.ID == job1.ID {
		t.Fatalf("restarted server reused job ID %s", job2.ID)
	}

	// Both snapshots are listed.
	code, body := getBody(t, ts2, "/snapshots")
	if code != http.StatusOK {
		t.Fatalf("/snapshots: %d: %s", code, body)
	}
	var listing struct {
		Snapshots []store.Meta `json:"snapshots"`
	}
	if err := json.Unmarshal(body, &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Snapshots) != 2 || listing.Snapshots[0].JobID != job1.ID || listing.Snapshots[1].JobID != job2.ID {
		t.Fatalf("snapshots = %+v", listing.Snapshots)
	}

	// The diff reports the injected flow, via job-ID refs...
	code, gotDiff := getBody(t, ts2, "/diff?from="+job1.ID+"&to="+job2.ID)
	if code != http.StatusOK {
		t.Fatalf("/diff: %d: %s", code, gotDiff)
	}
	var doc report.DiffDoc
	if err := json.Unmarshal(gotDiff, &doc); err != nil {
		t.Fatal(err)
	}
	if !doc.Changed || doc.Added == 0 {
		t.Fatalf("diff reports no change: %s", gotDiff)
	}
	foundInjected := false
	for _, p := range doc.Personas {
		for _, f := range p.Added {
			if f.FQDN == "stats.g.doubleclick.net" {
				foundInjected = true
			}
		}
		if len(p.Removed) != 0 {
			t.Errorf("unexpected removed flows for %s: %+v", p.Persona, p.Removed)
		}
	}
	if !foundInjected {
		t.Errorf("injected flow missing from diff: %s", gotDiff)
	}

	// ...and the served diff is byte-identical to one computed directly
	// over the pipeline, i.e. the restart changed nothing.
	want := directDiffJSON(t, baseURL, injectedURL)
	if !bytes.Equal(gotDiff, want) {
		t.Errorf("served diff differs from direct pipeline diff:\n got: %s\nwant: %s", gotDiff, want)
	}

	// Sequence-number refs and the markdown rendering agree.
	code, md := getBody(t, ts2, "/diff?from=1&to=2&format=md")
	if code != http.StatusOK || !strings.Contains(string(md), "stats.g.doubleclick.net") {
		t.Errorf("markdown diff: %d: %s", code, md)
	}

	// Unknown refs 404; missing params and unknown formats 400.
	if code, _ := getBody(t, ts2, "/diff?from=99&to=1"); code != http.StatusNotFound {
		t.Errorf("unknown ref: %d, want 404", code)
	}
	if code, _ := getBody(t, ts2, "/diff?from=1"); code != http.StatusBadRequest {
		t.Errorf("missing param: %d, want 400", code)
	}
	if code, _ := getBody(t, ts2, "/diff?from=1&to=2&format=csv"); code != http.StatusBadRequest {
		t.Errorf("unknown format: %d, want 400", code)
	}
}

// directDiffJSON computes the expected longitudinal diff straight through
// the pipeline, bypassing upload, store, and restart.
func directDiffJSON(t *testing.T, baseURL, injectedURL string) []byte {
	t.Helper()
	spec, _ := services.ByName("Quizlet")
	id := core.ServiceIdentity{Name: spec.Name, Owner: spec.Owner, FirstPartyESLDs: spec.FirstPartyESLDs}
	audit := func(urls ...string) *core.ServiceResult {
		h, err := har.Parse([]byte(deltaHAR(t, urls...)))
		if err != nil {
			t.Fatal(err)
		}
		return core.NewPipeline().AnalyzeRecords(id, core.FromHAR(h, flows.Child, flows.Web))
	}
	want, err := report.ExportDiffJSON(core.Longitudinal(audit(baseURL), audit(baseURL, injectedURL)))
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// TestSnapshotEndpointsWithoutStore: a memory-only server declines the
// snapshot endpoints explicitly rather than 404ing.
func TestSnapshotEndpointsWithoutStore(t *testing.T) {
	srv := New(Config{TempDir: t.TempDir()})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	for _, path := range []string{"/snapshots", "/diff?from=1&to=2"} {
		if code, _ := getBody(t, ts, path); code != http.StatusNotImplemented {
			t.Errorf("GET %s without store: %d, want 501", path, code)
		}
	}
}

// TestRestartDurability pins the report byte-stability guarantee: an
// FSStore-backed server restarted over the same data directory serves the
// same report.json, byte for byte, for a job audited before the restart.
func TestRestartDurability(t *testing.T) {
	dir := t.TempDir()
	st1, err := store.OpenFSStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv1 := New(Config{TempDir: t.TempDir(), Store: st1})
	ts1 := httptest.NewServer(srv1)
	job := runJob(t, ts1, map[string][2]string{"child": {"c.har", string(childHAR(t))}, "name": {"", "Quizlet"}})
	code, want := getBody(t, ts1, "/jobs/"+job.ID+"/report.json")
	if code != http.StatusOK {
		t.Fatalf("pre-restart report: %d", code)
	}
	ts1.Close()
	srv1.Close()

	st2, err := store.OpenFSStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := New(Config{TempDir: t.TempDir(), Store: st2})
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()

	code, got := getBody(t, ts2, "/jobs/"+job.ID+"/report.json")
	if code != http.StatusOK {
		t.Fatalf("post-restart report: %d: %s", code, got)
	}
	if !bytes.Equal(got, want) {
		t.Error("report.json differs across restart")
	}
	// CSV too.
	if code, csv := getBody(t, ts2, "/jobs/"+job.ID+"/report.csv"); code != http.StatusOK || len(csv) == 0 {
		t.Errorf("post-restart report.csv: %d", code)
	}
}

// TestPersonasEndpointAndCustomUpload checks GET /personas lists the
// registry and rule packs, and that uploads grouped under a registered
// custom persona's name audit end to end into that persona's trace.
func TestPersonasEndpointAndCustomUpload(t *testing.T) {
	if _, err := flows.RegisterPersona(flows.PersonaInfo{
		Name: "Server Kid", Aliases: []string{"server-kid"},
		AgeKnown: true, AgeMin: 6, AgeMax: 9, LoggedIn: true,
	}); err != nil {
		t.Fatal(err)
	}

	srv := New(Config{TempDir: t.TempDir()})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/personas")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Personas []struct {
			Name    string `json:"name"`
			Builtin bool   `json:"builtin"`
		} `json:"personas"`
		RulePacks []string `json:"rule_packs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	names := map[string]bool{}
	for _, p := range listing.Personas {
		names[p.Name] = p.Builtin
	}
	if b, ok := names["Child"]; !ok || !b {
		t.Errorf("personas listing = %+v, missing built-in Child", listing.Personas)
	}
	if b, ok := names["Server Kid"]; !ok || b {
		t.Errorf("personas listing = %+v, missing custom Server Kid", listing.Personas)
	}
	packs := strings.Join(listing.RulePacks, ",")
	for _, want := range []string{"coppa", "ccpa", "gdpr"} {
		if !strings.Contains(packs, want) {
			t.Errorf("rule_packs = %v, missing %q", listing.RulePacks, want)
		}
	}

	// Upload a capture under the custom persona's alias.
	resp = submit(t, ts, map[string][2]string{
		"server-kid": {"kid.har", string(childHAR(t))},
		"name":       {"", "Quizlet"},
	})
	if resp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit under custom persona: %d: %s", resp.StatusCode, body)
	}
	job := decodeJob(t, resp)
	if done := wait(t, ts, job.ID); done.State != JobDone {
		t.Fatalf("job = %+v", done)
	}
	rep, err := http.Get(ts.URL + "/jobs/" + job.ID + "/report.json")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(rep.Body)
	rep.Body.Close()
	if !strings.Contains(string(body), `"trace": "Server Kid"`) {
		t.Error("served report does not group flows under the custom persona")
	}
}
