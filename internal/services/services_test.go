package services

import (
	"testing"

	"diffaudit/internal/entity"
	"diffaudit/internal/flows"
	"diffaudit/internal/ontology"
)

func TestSixServices(t *testing.T) {
	all := All()
	if len(all) != 6 {
		t.Fatalf("profiles = %d, want 6", len(all))
	}
	names := []string{"Duolingo", "Minecraft", "Quizlet", "Roblox", "TikTok", "YouTube"}
	for i, want := range names {
		if all[i].Name != want {
			t.Errorf("profile %d = %s, want %s", i, all[i].Name, want)
		}
	}
}

func TestByName(t *testing.T) {
	if s, ok := ByName("quizlet"); !ok || s.Name != "Quizlet" {
		t.Error("case-insensitive lookup failed")
	}
	if _, ok := ByName("Fortnite"); ok {
		t.Error("unknown service found")
	}
}

func TestTable1RowsMatchPaper(t *testing.T) {
	want := map[string]Table1Row{
		"Duolingo":  {122, 69, 60909, 1466},
		"Minecraft": {136, 56, 134852, 2004},
		"Quizlet":   {532, 257, 88102, 6158},
		"Roblox":    {152, 24, 103642, 2302},
		"TikTok":    {80, 14, 32234, 2412},
		"YouTube":   {76, 15, 20774, 226},
	}
	var packets, tcp int
	for _, s := range All() {
		if s.Table1 != want[s.Name] {
			t.Errorf("%s Table1 = %+v, want %+v", s.Name, s.Table1, want[s.Name])
		}
		packets += s.Table1.Packets
		tcp += s.Table1.TCPFlows
	}
	if packets != 440513 {
		t.Errorf("total packets = %d, want 440513", packets)
	}
	if tcp != 14568 {
		t.Errorf("total TCP flows = %d, want 14568", tcp)
	}
}

func TestGridShapes(t *testing.T) {
	for _, s := range All() {
		for _, g := range ontology.FlowGroups() {
			for _, c := range flows.DestClasses() {
				for _, tc := range flows.TraceCategories() {
					_ = s.Grid.Mask(g, c, tc) // zero value acceptable; no panic
				}
			}
		}
	}
}

func TestGridPaperSpotChecks(t *testing.T) {
	// Paper: YouTube has no third-party flows at all.
	yt, _ := ByName("YouTube")
	for _, g := range ontology.FlowGroups() {
		for _, c := range []flows.DestClass{flows.ThirdParty, flows.ThirdPartyATS} {
			for _, tc := range flows.TraceCategories() {
				if yt.Grid.Mask(g, c, tc) != 0 {
					t.Errorf("YouTube grid has third-party flow %v/%v/%v", g, c, tc)
				}
			}
		}
	}
	// Paper: Minecraft child/adolescent lack personal identifiers → 3rd ATS,
	// adult has it (mobile only).
	mc, _ := ByName("Minecraft")
	if mc.Grid.Mask(ontology.PersonalIdentifiers, flows.ThirdPartyATS, flows.Child) != 0 {
		t.Error("Minecraft child PI→3rdATS must be absent")
	}
	if mc.Grid.Mask(ontology.PersonalIdentifiers, flows.ThirdPartyATS, flows.Adult) != flows.OnMobile {
		t.Error("Minecraft adult PI→3rdATS must be mobile-only")
	}
	// Paper: Duolingo and Quizlet have no first-party ATS flows.
	for _, name := range []string{"Duolingo", "Quizlet"} {
		s, _ := ByName(name)
		for _, g := range ontology.FlowGroups() {
			for _, tc := range flows.TraceCategories() {
				if s.Grid.Mask(g, flows.FirstPartyATS, tc) != 0 {
					t.Errorf("%s has a first-party ATS flow %v/%v", name, g, tc)
				}
			}
		}
	}
	// Paper: all services collect first-party in every trace.
	for _, s := range All() {
		for _, tc := range flows.TraceCategories() {
			any := false
			for _, g := range ontology.FlowGroups() {
				if s.Grid.Mask(g, flows.FirstParty, tc) != 0 {
					any = true
				}
			}
			if !any {
				t.Errorf("%s has no first-party collection in %v", s.Name, tc)
			}
		}
	}
}

func TestLinkabilityCalibrationMatchesPaper(t *testing.T) {
	wantParties := map[string][4]int{
		"Duolingo":  {19, 58, 51, 14},
		"Minecraft": {31, 31, 18, 17},
		"Quizlet":   {31, 219, 234, 160},
		"Roblox":    {15, 20, 20, 4},
		"TikTok":    {2, 6, 5, 3},
		"YouTube":   {0, 0, 0, 0},
	}
	wantLargest := map[string][4]int{
		"Duolingo":  {11, 11, 11, 11},
		"Minecraft": {9, 10, 11, 8},
		"Quizlet":   {10, 12, 13, 12},
		"Roblox":    {8, 9, 8, 8},
		"TikTok":    {5, 7, 10, 5},
		"YouTube":   {0, 0, 0, 0},
	}
	for _, s := range All() {
		if s.LinkableParties != wantParties[s.Name] {
			t.Errorf("%s linkable parties = %v, want %v", s.Name, s.LinkableParties, wantParties[s.Name])
		}
		if s.LargestSet != wantLargest[s.Name] {
			t.Errorf("%s largest sets = %v, want %v", s.Name, s.LargestSet, wantLargest[s.Name])
		}
	}
}

func TestOwnersResolveInEntityDataset(t *testing.T) {
	for _, s := range All() {
		for _, e := range s.FirstPartyESLDs {
			if got := entity.OwnerName(e); got != s.Owner {
				t.Errorf("%s: eSLD %s owned by %q, expected %q", s.Name, e, got, s.Owner)
			}
		}
	}
}

func TestPreferenceOrder(t *testing.T) {
	order := PreferenceOrder()
	if len(order) != 19 {
		t.Fatalf("preference order covers %d categories, want the 19 observed", len(order))
	}
	seen := map[string]bool{}
	for _, c := range order {
		if !c.ObservedInPaper {
			t.Errorf("%q in preference order but not observed in paper", c.Name)
		}
		if seen[c.Name] {
			t.Errorf("%q duplicated in preference order", c.Name)
		}
		seen[c.Name] = true
	}
	// The first 13 compose the paper's Quizlet-adult largest set; identifiers
	// must lead so every prefix of length ≥ 2 is linkable.
	if !order[0].IsIdentifier() {
		t.Error("preference order must start with an identifier")
	}
	hasPI := false
	for _, c := range order[:5] {
		if !c.IsIdentifier() {
			hasPI = true
		}
	}
	_ = hasPI // prefix linkability is asserted end-to-end in core tests
}

func TestGridEncodingPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad grid symbol must panic")
		}
	}()
	grid(map[ontology.Level2][4]string{
		ontology.Geolocation: {"XXXX", "----", "----", "----"},
	})
}

func TestGridEncodingPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad grid length must panic")
		}
	}()
	grid(map[ontology.Level2][4]string{
		ontology.Geolocation: {"BB", "----", "----", "----"},
	})
}
