package services

import (
	"diffaudit/internal/ontology"
)

// Shared third-party destination pools. The exact FQDN lists implement the
// cross-service overlap plan that makes the per-service rows of Table 1 sum
// to the paper's unique totals (964 domains, 326 eSLDs); see DESIGN.md.
var (
	// SharedGoogleFQDNs are contacted identically by the five non-Google
	// services; YouTube reaches the same eSLDs through its own hosts.
	SharedGoogleFQDNs = []string{
		"region1.google-analytics.com",
		"stats.g.doubleclick.net",
		"www.googletagmanager.com",
		"pagead2.googlesyndication.com",
	}
	// YouTubeGoogleATSFQDNs are YouTube's first-party hosts on those same
	// ATS eSLDs.
	YouTubeGoogleATSFQDNs = []string{
		"google-analytics.com",
		"ade.doubleclick.net",
		"googletagmanager.com",
		"tpc.googlesyndication.com",
	}
	// SharedATS5FQDNs are shared by Duolingo, Minecraft, Quizlet, Roblox
	// and TikTok.
	SharedATS5FQDNs = []string{
		"t.appsflyer.com",
		"app.adjust.com",
	}
	// SharedATS4FQDNs are shared by Duolingo, Minecraft, Quizlet and
	// Roblox (TikTok's third-party surface is too small; Figure 5 shows
	// its distinct ad stack).
	SharedATS4FQDNs = []string{
		"aax.amazon-adsystem.com",
		"ads.pubmatic.com",
		"u.openx.net",
		"ssum.casalemedia.com",
		"pixel.rubiconproject.com",
		"pixel.mathtag.com",
		"track.adform.net",
		"tlx.3lift.com",
		"btlr.sharethrough.com",
		"hbx.media.net",
	}
	// SharedATS3FQDNs are shared by Duolingo, Minecraft and Quizlet.
	SharedATS3FQDNs = []string{
		"gum.criteo.com",
		"match.adsrvr.org",
		"sb.scorecardresearch.com",
		"secure-dcr.imrworldwide.com",
		"dpm.demdex.net",
		"quizlet.tt.omtrdc.net",
		"cm.everesttech.net",
		"metrics.2o7.net",
		"pixel.tapad.com",
		"idsync.rlcdn.com",
		"cdn.id5-sync.com",
		"tags.crwdcntrl.net",
		"aa.agkn.com",
		"prg.smartadserver.com",
		"ap.lijit.com",
		"sync.33across.com",
		"rtb.gumgum.com",
		"com-quizlet.mini.snowplowanalytics.com",
		"cdnssl.clicktale.net",
		"o74.ingest.sentry.io",
		"bam.nr-data.net",
	}

	// Pair-shared pools (exactly two services each).
	PairCloudfront = []string{"d1lfxha3ugu3d4.cloudfront.net", "d2tq98cdr84tsw.cloudfront.net", "d3alqb8vzo7fun.cloudfront.net", "d1j8r0kxyu9tj8.cloudfront.net", "d2yyd1h5u9mauk.cloudfront.net"}
	PairAmazonAWS  = []string{"s3.amazonaws.com", "queue.amazonaws.com", "lambda.us-east-1.amazonaws.com", "sns.us-east-1.amazonaws.com", "kinesis.us-east-1.amazonaws.com"}
	PairSegment    = []string{"api.segment.com", "cdn.segment.com", "events.segment.com", "t.segment.com"}
	PairJSDelivr   = []string{"cdn.jsdelivr.net", "fastly.jsdelivr.net", "gcore.jsdelivr.net"}
	PairOneTrust   = []string{"cdn.onetrust.com", "geolocation.onetrust.com", "app.onetrust.com", "privacyportal.onetrust.com"}
	PairCookieLaw  = []string{"cdn.cookielaw.org", "geoip.cookielaw.org", "optanon.cookielaw.org", "consent.cookielaw.org"}
	PairFacebook   = []string{"connect.facebook.net", "graph.facebook.net", "an.facebook.net", "static.facebook.net"}
	PairAkamaized  = []string{"a1.akamaized.net", "a2.akamaized.net", "b1.akamaized.net", "c1.akamaized.net", "dlc.akamaized.net"}
	PairFastly     = []string{"f1.shared.global.fastly.net", "f2.shared.global.fastly.net", "f3.shared.global.fastly.net", "f4.shared.global.fastly.net"}
)

// concat builds a shared-third-party list.
func concat(lists ...[]string) []string {
	var out []string
	for _, l := range lists {
		out = append(out, l...)
	}
	return out
}

var allSpecs = []*Spec{
	{
		Name:            "Duolingo",
		Owner:           "Duolingo, Inc.",
		FirstPartyESLDs: []string{"duolingo.com"},
		Table1:          Table1Row{Domains: 122, ESLDs: 69, Packets: 60909, TCPFlows: 1466},
		Grid: grid(map[ontology.Level2][4]string{
			ontology.PersonalIdentifiers:      {"BBBB", "----", "WWW-", "BBBM"},
			ontology.DeviceIdentifiers:        {"BBBB", "----", "BBBB", "BBBB"},
			ontology.PersonalCharacteristics:  {"BBBB", "----", "WWWW", "BBBB"},
			ontology.Geolocation:              {"BBBB", "----", "----", "BBBM"},
			ontology.UserCommunications:       {"BBBB", "----", "BBBB", "BBBB"},
			ontology.UserInterestsAndBehavior: {"BBBB", "----", "BBBB", "BBBB"},
		}),
		LinkableParties:        [4]int{19, 58, 51, 14},
		LargestSet:             [4]int{11, 11, 11, 11},
		FirstPartyFQDNCount:    35,
		SharedThirdParties:     concat(SharedGoogleFQDNs, SharedATS5FQDNs, SharedATS4FQDNs, SharedATS3FQDNs, PairCloudfront, PairAmazonAWS, PairSegment, PairJSDelivr),
		UniqueThirdESLDs:       27,
		UniqueThirdFQDNs:       33,
		UniqueThirdATSFraction: 0.7,
		NoiseKeys:              500,
	},
	{
		Name:  "Minecraft",
		Owner: "Microsoft Corporation",
		FirstPartyESLDs: []string{
			"minecraft.net", "microsoft.com", "mojang.com", "xboxlive.com",
			"live.com", "clarity.ms", "msecnd.net", "azureedge.net",
		},
		Table1: Table1Row{Domains: 136, ESLDs: 56, Packets: 134852, TCPFlows: 2004},
		Grid: grid(map[ontology.Level2][4]string{
			ontology.PersonalIdentifiers:      {"BBBM", "BBBW", "MMM-", "--M-"},
			ontology.DeviceIdentifiers:        {"BBBB", "BBBB", "BBBW", "BBBB"},
			ontology.PersonalCharacteristics:  {"BBBB", "BBBW", "BBBW", "BBBB"},
			ontology.Geolocation:              {"BWBM", "WWWW", "WWW-", "MMMM"},
			ontology.UserCommunications:       {"BBBB", "BBBB", "BBBW", "BBBB"},
			ontology.UserInterestsAndBehavior: {"BBBB", "BBBB", "WBWW", "BBBB"},
		}),
		LinkableParties:     [4]int{31, 31, 18, 17},
		LargestSet:          [4]int{9, 10, 11, 8},
		FirstPartyFQDNCount: 60,
		FirstPartyATSFQDNs: []string{
			"browser.events.data.microsoft.com", "vortex.data.microsoft.com",
			"telemetry.minecraft.net", "mccollect.minecraft.net",
			"www.clarity.ms",
		},
		SharedThirdParties:     concat(SharedGoogleFQDNs, SharedATS5FQDNs, SharedATS4FQDNs, SharedATS3FQDNs, PairOneTrust, PairCookieLaw, PairAkamaized),
		UniqueThirdESLDs:       8,
		UniqueThirdFQDNs:       26,
		UniqueThirdATSFraction: 0.6,
		NoiseKeys:              520,
	},
	{
		Name:            "Quizlet",
		Owner:           "Quizlet, Inc.",
		FirstPartyESLDs: []string{"quizlet.com", "qzlt.io"},
		Table1:          Table1Row{Domains: 532, ESLDs: 257, Packets: 88102, TCPFlows: 6158},
		Grid: grid(map[ontology.Level2][4]string{
			ontology.PersonalIdentifiers:      {"BBBW", "----", "BBBB", "WBBB"},
			ontology.DeviceIdentifiers:        {"BBBB", "----", "BBBB", "BBBB"},
			ontology.PersonalCharacteristics:  {"BBBB", "----", "BBBB", "BBBB"},
			ontology.Geolocation:              {"WWWW", "----", "BBBB", "BBBB"},
			ontology.UserCommunications:       {"BBBB", "----", "BBBB", "BBBB"},
			ontology.UserInterestsAndBehavior: {"BBBB", "----", "BBBB", "BBBB"},
		}),
		LinkableParties:        [4]int{31, 219, 234, 160},
		LargestSet:             [4]int{10, 12, 13, 12},
		FirstPartyFQDNCount:    45,
		SharedThirdParties:     concat(SharedGoogleFQDNs, SharedATS5FQDNs, SharedATS4FQDNs, SharedATS3FQDNs, PairCloudfront, PairAmazonAWS, PairSegment, PairOneTrust, PairCookieLaw, PairFacebook, PairFastly),
		UniqueThirdESLDs:       211,
		UniqueThirdFQDNs:       420,
		UniqueThirdATSFraction: 0.75,
		NoiseKeys:              703,
	},
	{
		Name:            "Roblox",
		Owner:           "Roblox Corporation",
		FirstPartyESLDs: []string{"roblox.com", "rbxcdn.com"},
		Table1:          Table1Row{Domains: 152, ESLDs: 24, Packets: 103642, TCPFlows: 2302},
		Grid: grid(map[ontology.Level2][4]string{
			ontology.PersonalIdentifiers:      {"BBBW", "BBBW", "MMM-", "WWWW"},
			ontology.DeviceIdentifiers:        {"BBBB", "BBBB", "BBBW", "BBBW"},
			ontology.PersonalCharacteristics:  {"BBBB", "BBBB", "BBBW", "BBBW"},
			ontology.Geolocation:              {"WWW-", "----", "----", "WBWW"},
			ontology.UserCommunications:       {"BBBB", "BBBB", "BBBW", "BBBW"},
			ontology.UserInterestsAndBehavior: {"BBBB", "BBBW", "BBBW", "WWWW"},
		}),
		LinkableParties:     [4]int{15, 20, 20, 4},
		LargestSet:          [4]int{8, 9, 8, 8},
		FirstPartyFQDNCount: 120,
		FirstPartyATSFQDNs: []string{
			"metrics.roblox.com", "ephemeralcounters.api.roblox.com",
		},
		SharedThirdParties:     concat(SharedGoogleFQDNs, SharedATS5FQDNs, SharedATS4FQDNs, PairAkamaized, PairFastly),
		UniqueThirdESLDs:       4,
		UniqueThirdFQDNs:       7,
		UniqueThirdATSFraction: 0.5,
		NoiseKeys:              560,
	},
	{
		Name:            "TikTok",
		Owner:           "TikTok Pte. Ltd.",
		FirstPartyESLDs: []string{"tiktok.com", "tiktokcdn.com", "tiktokv.com", "byteoversea.com"},
		Table1:          Table1Row{Domains: 80, ESLDs: 14, Packets: 32234, TCPFlows: 2412},
		Grid: grid(map[ontology.Level2][4]string{
			ontology.PersonalIdentifiers:      {"WWWW", "WWWW", "-WW-", "--M-"},
			ontology.DeviceIdentifiers:        {"BBBB", "BBBW", "WWWW", "MMMM"},
			ontology.PersonalCharacteristics:  {"WWWW", "WWWW", "WWWW", "--M-"},
			ontology.Geolocation:              {"WWWW", "WWWW", "----", "--M-"},
			ontology.UserCommunications:       {"BBBB", "BBBW", "WWWW", "MMMM"},
			ontology.UserInterestsAndBehavior: {"WWWB", "WWWW", "WWWW", "-MM-"},
		}),
		LinkableParties:     [4]int{2, 6, 5, 3},
		LargestSet:          [4]int{5, 7, 10, 5},
		FirstPartyFQDNCount: 65,
		FirstPartyATSFQDNs: []string{
			"analytics.tiktok.com", "mon.tiktokv.com", "mon.byteoversea.com",
			"log.byteoversea.com",
		},
		SharedThirdParties:     concat(SharedGoogleFQDNs, SharedATS5FQDNs, PairFacebook, PairJSDelivr),
		UniqueThirdESLDs:       2,
		UniqueThirdFQDNs:       2,
		UniqueThirdATSFraction: 1.0,
		NoiseKeys:              480,
	},
	{
		Name:  "YouTube",
		Owner: "Google LLC",
		FirstPartyESLDs: []string{
			"youtube.com", "youtubekids.com", "google.com", "googlevideo.com",
			"gstatic.com", "googleapis.com", "ggpht.com", "ytimg.com",
			"googleusercontent.com", "youtube-nocookie.com",
			"app-measurement.com",
			// The four shared ATS eSLDs are Google-owned, so for YouTube
			// they are first parties.
			"google-analytics.com", "doubleclick.net", "googletagmanager.com",
			"googlesyndication.com",
		},
		Table1: Table1Row{Domains: 76, ESLDs: 15, Packets: 20774, TCPFlows: 226},
		Grid: grid(map[ontology.Level2][4]string{
			ontology.PersonalIdentifiers:      {"WBWW", "-WW-", "----", "----"},
			ontology.DeviceIdentifiers:        {"WBBW", "WWWW", "----", "----"},
			ontology.PersonalCharacteristics:  {"WWWW", "WWWW", "----", "----"},
			ontology.Geolocation:              {"WBWW", "-WWW", "----", "----"},
			ontology.UserCommunications:       {"WBBW", "WWWW", "----", "----"},
			ontology.UserInterestsAndBehavior: {"WBBW", "WWWW", "----", "----"},
		}),
		LinkableParties:     [4]int{0, 0, 0, 0},
		LargestSet:          [4]int{0, 0, 0, 0},
		FirstPartyFQDNCount: 76,
		FirstPartyATSFQDNs: append([]string{
			"jnn-pa.googleapis.com", "s.youtube.com", "log.youtube.com",
			"app-measurement.com",
		}, YouTubeGoogleATSFQDNs...),
		NoiseKeys: 500,
	},
}
