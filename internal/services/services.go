// Package services defines the behavior profiles of the six general
// audience services the DiffAudit paper audits. Each profile is calibrated
// from the paper's published observations — the Table 4 flow grid, the
// Table 1 dataset summary, and the linkability results of Figures 3-5 —
// and drives the traffic synthesizer, which substitutes for live data
// collection (see DESIGN.md). The audit pipeline never reads these
// profiles; it re-derives everything from the generated traffic.
package services

import (
	"fmt"
	"strings"

	"diffaudit/internal/flows"
	"diffaudit/internal/ontology"
)

// Table1Row is a dataset-summary calibration target (Table 1).
type Table1Row struct {
	Domains, ESLDs, Packets, TCPFlows int
}

// GridCell addresses one cell family of the Table 4 grid.
type GridCell struct {
	Group ontology.Level2
	Class flows.DestClass
}

// Grid holds the Table 4 presence masks: for each level-2 group and
// destination class, one platform mask per trace category.
type Grid map[GridCell][4]flows.PlatformMask

// Mask returns the platform mask for a cell and trace category.
func (g Grid) Mask(group ontology.Level2, class flows.DestClass, t flows.TraceCategory) flows.PlatformMask {
	return g[GridCell{group, class}][t]
}

// Spec is a complete service profile.
type Spec struct {
	// Name as printed in the paper's tables.
	Name string
	// Owner is the parent organization (entity dataset name).
	Owner string
	// FirstPartyESLDs are the service's own registrable domains.
	FirstPartyESLDs []string
	// Table1 is the calibration row from Table 1.
	Table1 Table1Row
	// Grid is the Table 4 flow grid.
	Grid Grid
	// LinkableParties is Figure 3: the number of third-party domains sent
	// linkable data per trace category (child, adolescent, adult, out).
	LinkableParties [4]int
	// LargestSet is Figure 4: the size of the largest linkable data type
	// set per trace category.
	LargestSet [4]int
	// FirstPartyFQDNCount sets how many first-party FQDNs the synthesizer
	// fabricates (subdomains over FirstPartyESLDs).
	FirstPartyFQDNCount int
	// FirstPartyATSFQDNs are first-party telemetry hosts (block-listed).
	FirstPartyATSFQDNs []string
	// SharedThirdParties are curated cross-service destinations (exact
	// FQDNs shared with other services, per the overlap plan in DESIGN.md).
	SharedThirdParties []string
	// UniqueThirdESLDs / UniqueThirdFQDNs size the service-specific
	// procedural third-party pool.
	UniqueThirdESLDs, UniqueThirdFQDNs int
	// UniqueThirdATSFraction is the fraction of the procedural pool
	// registered on block lists.
	UniqueThirdATSFraction float64
	// NoiseKeys is the number of opaque sub-threshold data types planted
	// in this service's payloads (the paper's long tail of strings "with
	// internal meaning known only to the app developers").
	NoiseKeys int
}

// grid builds a Grid from the compact string encoding used in table.go:
// per (group, class) a 4-character string over {B,W,M,-} for the child,
// adolescent, adult, and logged-out traces.
func grid(rows map[ontology.Level2][4]string) Grid {
	g := make(Grid)
	for group, classes := range rows {
		for ci, enc := range classes {
			if len(enc) != 4 {
				panic(fmt.Sprintf("services: grid encoding %q must have 4 symbols", enc))
			}
			var masks [4]flows.PlatformMask
			for ti, ch := range enc {
				switch ch {
				case 'B':
					masks[ti] = flows.OnWeb | flows.OnMobile
				case 'W':
					masks[ti] = flows.OnWeb
				case 'M':
					masks[ti] = flows.OnMobile
				case '-':
					masks[ti] = 0
				default:
					panic(fmt.Sprintf("services: bad grid symbol %q", ch))
				}
			}
			g[GridCell{group, flows.DestClass(ci)}] = masks
		}
	}
	return g
}

// All returns the six service profiles in the paper's table order.
func All() []*Spec { return allSpecs }

// ByName returns a profile by (case-insensitive) name.
func ByName(name string) (*Spec, bool) {
	for _, s := range allSpecs {
		if strings.EqualFold(s.Name, name) {
			return s, true
		}
	}
	return nil, false
}

// PreferenceOrder is the canonical ordering of observed level-3 categories
// used when composing linkable data type sets: identifiers first, then the
// personal-information categories in descending prevalence. The first 13
// entries match the largest set the paper reports for Quizlet's adult trace.
func PreferenceOrder() []*ontology.Category {
	names := []string{
		"Aliases",
		"Name",
		"Login Information",
		"Reasonably Linkable Personal Identifiers",
		"Device Software Identifiers",
		"Device Information",
		"Network Connection Information",
		"Language",
		"App or Service Usage",
		"Service Information",
		"Products and Advertising",
		"Account Settings",
		"Location Time",
		"Coarse Geolocation",
		"Contact Information",
		"Device Hardware Identifiers",
		"Age",
		"Gender/Sex",
		"Inferences About Users",
	}
	out := make([]*ontology.Category, 0, len(names))
	for _, n := range names {
		c, ok := ontology.Lookup(n)
		if !ok {
			panic("services: unknown category " + n)
		}
		out = append(out, c)
	}
	return out
}
