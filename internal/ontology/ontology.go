// Package ontology implements the DiffAudit data type ontology rooted in the
// COPPA and CCPA legal definitions of identifiers and personal information
// (16 C.F.R. § 312.2 and CAL. CIV. Code § 1798.140). The ontology has four
// levels:
//
//	level 1: Identifiers | Personal Information
//	level 2: 8 groups (personal identifiers, device identifiers, ...)
//	level 3: 35 categories used as classification labels
//	level 4: example terms per category, used as few-shot evidence
//
// Level-3 categories are the labels the data type classifier assigns to raw
// data types extracted from network traffic; level-4 terms seed both the
// simulated-LLM classifier and the baseline matchers.
package ontology

import (
	"fmt"
	"sort"
	"strings"
)

// Level1 is the root of the ontology: the two top-level legal buckets.
type Level1 int

const (
	// Identifiers covers data that identifies a user or device, per the
	// COPPA definition of "personal information" identifiers and the CCPA
	// definition of "unique identifier".
	Identifiers Level1 = iota
	// PersonalInformation covers the remaining CCPA personal-information
	// categories: characteristics, history, geolocation, communications,
	// sensor data, and inferences.
	PersonalInformation
)

// String returns the human-readable level-1 name as printed in the paper.
func (l Level1) String() string {
	switch l {
	case Identifiers:
		return "Identifiers"
	case PersonalInformation:
		return "Personal Information"
	default:
		return fmt.Sprintf("Level1(%d)", int(l))
	}
}

// Level2 identifies one of the eight mid-level groups. Table 4 of the paper
// reports flows at this granularity.
type Level2 int

const (
	PersonalIdentifiers Level2 = iota
	DeviceIdentifiers
	PersonalCharacteristics
	PersonalHistoryGroup
	Geolocation
	UserCommunications
	Sensors
	UserInterestsAndBehavior
)

var level2Names = [...]string{
	PersonalIdentifiers:      "Personal Identifiers",
	DeviceIdentifiers:        "Device Identifiers",
	PersonalCharacteristics:  "Personal Characteristics",
	PersonalHistoryGroup:     "Personal History",
	Geolocation:              "Geolocation",
	UserCommunications:       "User Communications",
	Sensors:                  "Sensors",
	UserInterestsAndBehavior: "User Interests and Behaviors",
}

// String returns the group name as printed in the paper.
func (l Level2) String() string {
	if int(l) < len(level2Names) {
		return level2Names[l]
	}
	return fmt.Sprintf("Level2(%d)", int(l))
}

// Level1 returns the legal root bucket that contains this group.
func (l Level2) Level1() Level1 {
	switch l {
	case PersonalIdentifiers, DeviceIdentifiers:
		return Identifiers
	default:
		return PersonalInformation
	}
}

// Level2Groups returns all eight groups in ontology order.
func Level2Groups() []Level2 {
	return []Level2{
		PersonalIdentifiers, DeviceIdentifiers, PersonalCharacteristics,
		PersonalHistoryGroup, Geolocation, UserCommunications, Sensors,
		UserInterestsAndBehavior,
	}
}

// FlowGroups returns the six level-2 groups reported in Table 4 of the paper
// (Personal History and Sensors were not observed in the dataset and are
// omitted from the flow grid).
func FlowGroups() []Level2 {
	return []Level2{
		PersonalIdentifiers, DeviceIdentifiers, PersonalCharacteristics,
		Geolocation, UserCommunications, UserInterestsAndBehavior,
	}
}

// Category is a level-3 classification label.
type Category struct {
	// Name is the canonical label, e.g. "Device Hardware Identifiers".
	Name string
	// Group is the level-2 parent.
	Group Level2
	// Examples are the level-4 terms from Table 5, used as classifier
	// evidence and as few-shot training strings for the baselines.
	Examples []string
	// ObservedInPaper reports whether the category was marked with '*'
	// in Table 2 (observed in the paper's dataset).
	ObservedInPaper bool
}

// Level1 returns the legal root bucket for the category.
func (c *Category) Level1() Level1 { return c.Group.Level1() }

// IsIdentifier reports whether the category falls under the Identifiers
// level-1 bucket. Linkability analysis pairs identifier categories with
// personal-information categories.
func (c *Category) IsIdentifier() bool { return c.Level1() == Identifiers }

// Key returns the normalized lookup key for the category name.
func (c *Category) Key() string { return NormalizeLabel(c.Name) }

// NormalizeLabel lower-cases a label and collapses separators so that
// "Gender/Sex", "gender sex" and "GENDER_SEX" share one key.
func NormalizeLabel(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	prevSep := false
	for _, r := range strings.ToLower(strings.TrimSpace(s)) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
			prevSep = false
		default:
			if !prevSep && b.Len() > 0 {
				b.WriteByte(' ')
				prevSep = true
			}
		}
	}
	return strings.TrimSpace(b.String())
}

// byKey indexes the canonical categories at package init.
var byKey = func() map[string]*Category {
	m := make(map[string]*Category, len(categories))
	for i := range categories {
		c := &categories[i]
		k := c.Key()
		if _, dup := m[k]; dup {
			panic("ontology: duplicate category key " + k)
		}
		m[k] = c
	}
	return m
}()

// aliasKey maps alternative spellings used in the paper's tables to the
// canonical categories.
var aliasKey = map[string]string{
	"linked personal ids":              "linked personal identifiers",
	"reasonably linkable personal ids": "reasonably linkable personal identifiers",
	"contact info":                     "contact information",
	"login info":                       "login information",
	"device hardware ids":              "device hardware identifiers",
	"device software ids":              "device software identifiers",
	"device info":                      "device information",
	"genetic info":                     "genetic information",
	"biometric info":                   "biometric information",
	"network connection info":          "network connection information",
	"products advertising":             "products and advertising",
	"app service usage":                "app or service usage",
	"service info":                     "service information",
	"inference about users":            "inferences about users",
	"inferences":                       "inferences about users",
	"protected classifications":        "race", // Table 5 groups these; race is the first listed
}

// Lookup resolves a label (canonical or alias, any casing/punctuation) to
// its category. The second return is false if the label is unknown.
func Lookup(label string) (*Category, bool) {
	k := NormalizeLabel(label)
	if c, ok := byKey[k]; ok {
		return c, true
	}
	if canon, ok := aliasKey[k]; ok {
		return byKey[canon], true
	}
	return nil, false
}

// Categories returns the 35 level-3 categories in ontology order. The slice
// is shared; callers must not modify it.
func Categories() []Category { return categories }

// CategoriesInGroup returns the level-3 categories under a level-2 group.
func CategoriesInGroup(g Level2) []*Category {
	var out []*Category
	for i := range categories {
		if categories[i].Group == g {
			out = append(out, &categories[i])
		}
	}
	return out
}

// CategoryNames returns all 35 canonical labels, sorted.
func CategoryNames() []string {
	names := make([]string, len(categories))
	for i := range categories {
		names[i] = categories[i].Name
	}
	sort.Strings(names)
	return names
}

// ObservedCategories returns the 19 categories marked observed in Table 2.
func ObservedCategories() []*Category {
	var out []*Category
	for i := range categories {
		if categories[i].ObservedInPaper {
			out = append(out, &categories[i])
		}
	}
	return out
}

// ExampleIndex returns a map from every level-4 example term (normalized) to
// its category. Terms appearing in several categories keep the first
// (ontology-order) owner, matching the paper's "first match" treatment.
func ExampleIndex() map[string]*Category {
	m := make(map[string]*Category)
	for i := range categories {
		c := &categories[i]
		for _, e := range c.Examples {
			k := NormalizeLabel(e)
			if _, ok := m[k]; !ok {
				m[k] = c
			}
		}
	}
	return m
}
