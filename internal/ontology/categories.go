package ontology

// categories enumerates the 35 level-3 categories of the DiffAudit ontology
// (Table 2) with the level-4 example terms of Table 5. The eleven
// personal-characteristic categories split Table 5's "Protected
// Classifications" row into the individual CCPA classifications so that each
// of the 35 labels of Table 2 is addressable by the classifier.
var categories = []Category{
	// ---- Identifiers / Personal Identifiers -------------------------------
	{
		Name:  "Name",
		Group: PersonalIdentifiers,
		Examples: []string{
			"first and last name", "first name", "last name", "user name",
			"username", "full name", "display name", "real name", "surname",
		},
		ObservedInPaper: true,
	},
	{
		Name:  "Linked Personal Identifiers",
		Group: PersonalIdentifiers,
		Examples: []string{
			"social security number", "driver's license number",
			"state identification card number", "passport number", "ssn",
		},
	},
	{
		Name:  "Contact Information",
		Group: PersonalIdentifiers,
		Examples: []string{
			"email address", "email", "telephone number", "phone number",
			"phone", "mailing address", "contact email",
		},
		ObservedInPaper: true,
	},
	{
		Name:  "Reasonably Linkable Personal Identifiers",
		Group: PersonalIdentifiers,
		Examples: []string{
			"ip address", "ip", "unique pseudonym", "pseudonym",
			"client ip", "remote address", "x-forwarded-for",
		},
		ObservedInPaper: true,
	},
	{
		Name:  "Aliases",
		Group: PersonalIdentifiers,
		Examples: []string{
			"alias", "online identifier", "unique personal identifier",
			"unique id", "guid", "globally unique identifier", "uuid",
			"universally unique identifier", "user id", "uid", "member id",
			"account id", "player id", "profile id", "visitor id",
		},
		ObservedInPaper: true,
	},
	{
		Name:  "Customer Numbers",
		Group: PersonalIdentifiers,
		Examples: []string{
			"customer number", "account name", "insurance policy number",
			"bank account number", "credit card number", "debit card number",
			"card number", "billing account",
		},
	},
	{
		Name:  "Login Information",
		Group: PersonalIdentifiers,
		Examples: []string{
			"password", "login", "authorization", "authentication", "auth",
			"token", "access token", "refresh token", "session token",
			"credential", "api key", "bearer", "oauth", "signin", "sign in",
			"csrf", "xsrf", "nonce", "otp", "passcode",
		},
		ObservedInPaper: true,
	},

	// ---- Identifiers / Device Identifiers ---------------------------------
	{
		Name:  "Device Hardware Identifiers",
		Group: DeviceIdentifiers,
		Examples: []string{
			"imei", "international mobile equipment identity", "mac address",
			"mac", "unique device identifier", "udid",
			"processor serial number", "device serial number", "serial number",
			"device id", "hardware id", "android id", "build serial",
		},
		ObservedInPaper: true,
	},
	{
		Name:  "Device Software Identifiers",
		Group: DeviceIdentifiers,
		Examples: []string{
			"advertising identifier", "advertising id", "ad id", "adid",
			"idfa", "gaid", "cookie", "cookie id", "pixel tag", "pixel",
			"beacon", "tracking identifier", "tracking id", "install id",
			"instance id", "app set id", "fingerprint", "etag",
		},
		ObservedInPaper: true,
	},
	{
		Name:  "Device Information",
		Group: DeviceIdentifiers,
		Examples: []string{
			"display", "height", "width", "fps", "frames per second",
			"browser", "bitrate", "abr", "adaptive bitrate", "abr bitrate map",
			"speed", "device", "delay", "os", "operating system", "rate",
			"screen", "sound", "memory", "history", "cpu",
			"central processing unit", "buffer", "latency", "download",
			"load", "frame", "depth", "download speed", "render",
			"device model", "device type", "platform", "screen resolution",
			"user agent", "os version", "battery", "orientation",
		},
		ObservedInPaper: true,
	},

	// ---- Personal Information / Personal Characteristics ------------------
	{
		Name:     "Race",
		Group:    PersonalCharacteristics,
		Examples: []string{"race", "skin color", "national origin", "ancestry", "ethnicity"},
	},
	{
		Name:  "Age",
		Group: PersonalCharacteristics,
		Examples: []string{
			"age", "birthday", "birth date", "date of birth", "dob",
			"birth year", "age group", "age band", "year of birth",
		},
		ObservedInPaper: true,
	},
	{
		Name:  "Language",
		Group: PersonalCharacteristics,
		Examples: []string{
			"language", "locale", "lang", "accept language", "ui language",
			"preferred language", "learning language",
		},
		ObservedInPaper: true,
	},
	{
		Name:     "Religion",
		Group:    PersonalCharacteristics,
		Examples: []string{"religion", "religious affiliation", "creed"},
	},
	{
		Name:  "Gender/Sex",
		Group: PersonalCharacteristics,
		Examples: []string{
			"gender", "sex", "sexual orientation", "pronoun", "pronouns",
		},
		ObservedInPaper: true,
	},
	{
		Name:     "Marital Status",
		Group:    PersonalCharacteristics,
		Examples: []string{"marital status", "married", "spouse", "civil status"},
	},
	{
		Name:     "Military/Veteran Status",
		Group:    PersonalCharacteristics,
		Examples: []string{"military status", "veteran status", "military", "veteran"},
	},
	{
		Name:     "Medical Conditions",
		Group:    PersonalCharacteristics,
		Examples: []string{"medical condition", "health condition", "diagnosis", "medication"},
	},
	{
		Name:     "Genetic Information",
		Group:    PersonalCharacteristics,
		Examples: []string{"genetic information", "dna", "genome", "genotype"},
	},
	{
		Name:     "Disabilities",
		Group:    PersonalCharacteristics,
		Examples: []string{"disability", "disabilities", "impairment", "accessibility need"},
	},
	{
		Name:  "Biometric Information",
		Group: PersonalCharacteristics,
		Examples: []string{
			"biometric", "voiceprint", "faceprint", "fingerprint scan",
			"iris scan", "keystroke patterns", "keystroke rhythms", "gait",
			"physical characteristics or descriptions",
		},
	},

	// ---- Personal Information / Personal History --------------------------
	{
		Name:  "Personal History",
		Group: PersonalHistoryGroup,
		Examples: []string{
			"employment", "employment history", "education",
			"education history", "financial information",
			"medical information", "salary", "job title", "employer",
			"school", "degree",
		},
	},

	// ---- Personal Information / Geolocation -------------------------------
	{
		Name:  "Precise Geolocation",
		Group: Geolocation,
		Examples: []string{
			"gps location", "gps", "coordinates", "postal address",
			"latitude", "longitude", "lat", "lng", "lon", "geo coordinates",
			"street address", "altitude",
		},
	},
	{
		Name:  "Coarse Geolocation",
		Group: Geolocation,
		Examples: []string{
			"city", "town", "country", "region", "state", "province",
			"postal code", "zip code", "country code", "geo", "locality",
		},
		ObservedInPaper: true,
	},
	{
		Name:  "Location Time",
		Group: Geolocation,
		Examples: []string{
			"time", "timestamp", "timezone", "time zone", "time offset",
			"date", "utc offset", "local time", "client time", "epoch",
			"created at", "updated at", "ts",
		},
		ObservedInPaper: true,
	},

	// ---- Personal Information / User Communications -----------------------
	{
		Name:  "Communications",
		Group: UserCommunications,
		Examples: []string{
			"audio communications", "text communications",
			"video communications", "message", "chat", "direct message",
			"comment", "voice message", "mail contents",
		},
	},
	{
		Name:  "Contacts",
		Group: UserCommunications,
		Examples: []string{
			"contact list", "contacts", "address book", "friends list",
			"people communicated with", "followers", "following",
		},
	},
	{
		Name:  "Internet Activity",
		Group: UserCommunications,
		Examples: []string{
			"browsing history", "search history", "search query",
			"ip addresses communicated with", "visited pages", "clickstream",
		},
	},
	{
		Name:  "Network Connection Information",
		Group: UserCommunications,
		Examples: []string{
			"request", "response", "dns", "domain name system", "tcp",
			"transmission control protocol", "tls", "transport layer security",
			"rtt", "round trip time", "ttfb", "time to first byte",
			"protocol", "client", "connection", "key", "payload", "host",
			"referer", "referrer", "telemetry", "cache", "network type",
			"carrier", "ssid", "wifi", "cellular", "bandwidth", "proxy",
			"port", "socket", "http version", "content type", "user ip",
		},
		ObservedInPaper: true,
	},

	// ---- Personal Information / Sensors -----------------------------------
	{
		Name:  "Sensor Data",
		Group: Sensors,
		Examples: []string{
			"audio recordings", "video recordings", "sensor data",
			"accelerometer", "gyroscope", "thermal sensor", "olfactory sensor",
			"microphone", "camera", "proximity sensor", "light sensor",
		},
	},

	// ---- Personal Information / User Interests and Behavior ---------------
	{
		Name:  "Products and Advertising",
		Group: UserInterestsAndBehavior,
		Examples: []string{
			"records of personal property", "products or services considered",
			"interaction with an advertisement", "ad engagement",
			"advertisement engagement", "bid", "analytics", "marketing",
			"third party", "advertiser", "ad unit", "campaign", "creative",
			"impression", "ad click", "conversion", "placement", "sponsored",
			"promo", "ad slot", "auction", "cpm", "personalized ads",
		},
		ObservedInPaper: true,
	},
	{
		Name:  "App or Service Usage",
		Group: UserInterestsAndBehavior,
		Examples: []string{
			"user interaction with an application",
			"user interaction with a website", "session", "usage session",
			"content", "video", "audio", "video buffer", "audio buffer",
			"play", "volume", "avatar", "behavior", "action", "event",
			"data", "status", "duration", "timing", "watch time",
			"progress", "score", "level", "streak", "lesson", "quiz",
			"study set", "playlist", "view count", "interaction", "scroll",
			"click", "tap", "engagement", "playback",
		},
		ObservedInPaper: true,
	},
	{
		Name:  "Account Settings",
		Group: UserInterestsAndBehavior,
		Examples: []string{
			"account", "settings", "consent", "permission", "preferences",
			"opt out", "opt in", "privacy setting", "notification setting",
			"parental controls", "profile setting", "subscription",
		},
		ObservedInPaper: true,
	},
	{
		Name:  "Service Information",
		Group: UserInterestsAndBehavior,
		Examples: []string{
			"server", "sdk", "software development kit", "api",
			"application programming interface", "site", "url",
			"uniform resource locator", "domain", "version", "script",
			"uri", "uniform resource identifier", "application", "page",
			"app", "cdn", "content delivery network", "dom",
			"document object model", "build", "release", "environment",
			"endpoint", "module", "bundle", "library", "app version",
			"sdk version", "experiment", "feature flag",
		},
		ObservedInPaper: true,
	},
	{
		Name:  "Inferences About Users",
		Group: UserInterestsAndBehavior,
		Examples: []string{
			"user preferences", "characteristics", "psychological trends",
			"predispositions", "attitudes", "intelligence", "abilities",
			"aptitudes", "personality", "purchase history",
			"purchase tendency", "interest segment", "audience segment",
			"affinity", "recommendation profile", "predicted interests",
		},
		ObservedInPaper: true,
	},
}
