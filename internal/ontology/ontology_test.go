package ontology

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCategoryCount(t *testing.T) {
	if got := len(Categories()); got != 35 {
		t.Fatalf("ontology has %d level-3 categories, paper defines 35", got)
	}
}

func TestObservedCount(t *testing.T) {
	if got := len(ObservedCategories()); got != 19 {
		t.Fatalf("ontology marks %d categories observed, paper reports 19", got)
	}
}

func TestLevel2GroupCount(t *testing.T) {
	if got := len(Level2Groups()); got != 8 {
		t.Fatalf("got %d level-2 groups, want 8", got)
	}
	if got := len(FlowGroups()); got != 6 {
		t.Fatalf("got %d flow groups, want 6 (Table 4)", got)
	}
}

func TestEveryCategoryHasExamplesAndGroup(t *testing.T) {
	for _, c := range Categories() {
		if len(c.Examples) == 0 {
			t.Errorf("category %q has no level-4 examples", c.Name)
		}
		if c.Group.String() == "" || strings.HasPrefix(c.Group.String(), "Level2(") {
			t.Errorf("category %q has invalid group %v", c.Name, c.Group)
		}
	}
}

func TestLevel1Partition(t *testing.T) {
	var ids, pi int
	for _, c := range Categories() {
		switch c.Level1() {
		case Identifiers:
			ids++
		case PersonalInformation:
			pi++
		default:
			t.Fatalf("category %q has invalid level-1 %v", c.Name, c.Level1())
		}
	}
	if ids != 10 {
		t.Errorf("identifier categories = %d, want 10 (Table 2)", ids)
	}
	if pi != 25 {
		t.Errorf("personal-information categories = %d, want 25 (Table 2)", pi)
	}
}

func TestGroupSizes(t *testing.T) {
	want := map[Level2]int{
		PersonalIdentifiers:      7,
		DeviceIdentifiers:        3,
		PersonalCharacteristics:  11,
		PersonalHistoryGroup:     1,
		Geolocation:              3,
		UserCommunications:       4,
		Sensors:                  1,
		UserInterestsAndBehavior: 5,
	}
	for g, n := range want {
		if got := len(CategoriesInGroup(g)); got != n {
			t.Errorf("group %v has %d categories, want %d", g, got, n)
		}
	}
}

func TestLookupCanonical(t *testing.T) {
	for _, c := range Categories() {
		got, ok := Lookup(c.Name)
		if !ok {
			t.Errorf("Lookup(%q) failed", c.Name)
			continue
		}
		if got.Name != c.Name {
			t.Errorf("Lookup(%q) = %q", c.Name, got.Name)
		}
	}
}

func TestLookupAliases(t *testing.T) {
	cases := map[string]string{
		"Device Hardware Ids.":              "Device Hardware Identifiers",
		"device hardware ids":               "Device Hardware Identifiers",
		"Contact Info":                      "Contact Information",
		"LOGIN_INFO":                        "Login Information",
		"network-connection-info":           "Network Connection Information",
		"Inference About Users":             "Inferences About Users",
		"Reasonably Linkable Personal Ids.": "Reasonably Linkable Personal Identifiers",
		"gender/sex":                        "Gender/Sex",
		"App/Service Usage":                 "App or Service Usage",
	}
	for in, want := range cases {
		got, ok := Lookup(in)
		if !ok {
			t.Errorf("Lookup(%q) failed", in)
			continue
		}
		if got.Name != want {
			t.Errorf("Lookup(%q) = %q, want %q", in, got.Name, want)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	for _, in := range []string{"", "   ", "quantum flux", "zzz"} {
		if _, ok := Lookup(in); ok {
			t.Errorf("Lookup(%q) unexpectedly succeeded", in)
		}
	}
}

func TestNormalizeLabel(t *testing.T) {
	cases := map[string]string{
		"Gender/Sex":         "gender sex",
		"  app   usage  ":    "app usage",
		"Device_Hardware-ID": "device hardware id",
		"ALL CAPS":           "all caps",
		"":                   "",
		"a":                  "a",
		"--x--":              "x",
	}
	for in, want := range cases {
		if got := NormalizeLabel(in); got != want {
			t.Errorf("NormalizeLabel(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestNormalizeLabelIdempotent(t *testing.T) {
	f := func(s string) bool {
		n := NormalizeLabel(s)
		return NormalizeLabel(n) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalizeLabelNeverHasDoubleSpace(t *testing.T) {
	f := func(s string) bool {
		n := NormalizeLabel(s)
		return !strings.Contains(n, "  ") && n == strings.TrimSpace(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExampleIndexCoversAllCategories(t *testing.T) {
	idx := ExampleIndex()
	seen := map[string]bool{}
	for _, c := range idx {
		seen[c.Name] = true
	}
	for _, c := range Categories() {
		if !seen[c.Name] {
			t.Errorf("no example term resolves to category %q", c.Name)
		}
	}
}

func TestExampleIndexKeysNormalized(t *testing.T) {
	for k := range ExampleIndex() {
		if k != NormalizeLabel(k) {
			t.Errorf("example index key %q is not normalized", k)
		}
	}
}

func TestFlowGroupsObservedOnly(t *testing.T) {
	for _, g := range FlowGroups() {
		if g == PersonalHistoryGroup || g == Sensors {
			t.Errorf("flow groups must exclude %v (not observed in paper)", g)
		}
	}
}

func TestLevel2Level1Mapping(t *testing.T) {
	idGroups := map[Level2]bool{PersonalIdentifiers: true, DeviceIdentifiers: true}
	for _, g := range Level2Groups() {
		want := PersonalInformation
		if idGroups[g] {
			want = Identifiers
		}
		if g.Level1() != want {
			t.Errorf("%v.Level1() = %v, want %v", g, g.Level1(), want)
		}
	}
}

func TestCategoryNamesSortedUnique(t *testing.T) {
	names := CategoryNames()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("CategoryNames not sorted/unique at %d: %q >= %q", i, names[i-1], names[i])
		}
	}
}

func TestStringers(t *testing.T) {
	if Identifiers.String() != "Identifiers" {
		t.Error("Identifiers stringer")
	}
	if PersonalInformation.String() != "Personal Information" {
		t.Error("PersonalInformation stringer")
	}
	if Level1(99).String() != "Level1(99)" {
		t.Error("out-of-range Level1 stringer")
	}
	if Level2(99).String() != "Level2(99)" {
		t.Error("out-of-range Level2 stringer")
	}
	if UserInterestsAndBehavior.String() != "User Interests and Behaviors" {
		t.Error("UserInterestsAndBehavior stringer")
	}
}
