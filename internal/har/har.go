// Package har implements the HTTP Archive (HAR) 1.2 format, the capture
// format the DiffAudit paper exports from the Chrome DevTools Network panel
// for website traces and from Proxyman for desktop-app traces. Only the
// fields the audit pipeline consumes are modeled deeply (requests); response
// fields are carried opaquely enough to round-trip.
package har

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"time"
)

// HAR is the top-level HTTP Archive document.
type HAR struct {
	Log Log `json:"log"`
}

// Log is the root object of a HAR document.
type Log struct {
	Version string  `json:"version"`
	Creator Creator `json:"creator"`
	Pages   []Page  `json:"pages,omitempty"`
	Entries []Entry `json:"entries"`
	Comment string  `json:"comment,omitempty"`
}

// Creator identifies the exporting application.
type Creator struct {
	Name    string `json:"name"`
	Version string `json:"version"`
}

// Page groups entries by the page that generated them.
type Page struct {
	StartedDateTime time.Time `json:"startedDateTime"`
	ID              string    `json:"id"`
	Title           string    `json:"title"`
}

// Entry is one request/response exchange.
type Entry struct {
	Pageref         string    `json:"pageref,omitempty"`
	StartedDateTime time.Time `json:"startedDateTime"`
	Time            float64   `json:"time"` // milliseconds
	Request         Request   `json:"request"`
	Response        Response  `json:"response"`
	ServerIPAddress string    `json:"serverIPAddress,omitempty"`
	Connection      string    `json:"connection,omitempty"`
	Comment         string    `json:"comment,omitempty"`
}

// Request is the outgoing half of an exchange — the part DiffAudit audits.
type Request struct {
	Method      string    `json:"method"`
	URL         string    `json:"url"`
	HTTPVersion string    `json:"httpVersion"`
	Cookies     []Cookie  `json:"cookies"`
	Headers     []NV      `json:"headers"`
	QueryString []NV      `json:"queryString"`
	PostData    *PostData `json:"postData,omitempty"`
	HeadersSize int       `json:"headersSize"`
	BodySize    int       `json:"bodySize"`
}

// Response carries the minimum responder state for a valid document.
type Response struct {
	Status      int      `json:"status"`
	StatusText  string   `json:"statusText"`
	HTTPVersion string   `json:"httpVersion"`
	Cookies     []Cookie `json:"cookies"`
	Headers     []NV     `json:"headers"`
	Content     Content  `json:"content"`
	RedirectURL string   `json:"redirectURL"`
	HeadersSize int      `json:"headersSize"`
	BodySize    int      `json:"bodySize"`
}

// Content is the response body descriptor.
type Content struct {
	Size     int    `json:"size"`
	MimeType string `json:"mimeType"`
	Text     string `json:"text,omitempty"`
}

// NV is a name/value pair (headers, query parameters).
type NV struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// Cookie is a request or response cookie.
type Cookie struct {
	Name     string `json:"name"`
	Value    string `json:"value"`
	Path     string `json:"path,omitempty"`
	Domain   string `json:"domain,omitempty"`
	HTTPOnly bool   `json:"httpOnly,omitempty"`
	Secure   bool   `json:"secure,omitempty"`
}

// PostData is the request body.
type PostData struct {
	MimeType string `json:"mimeType"`
	Params   []NV   `json:"params,omitempty"`
	Text     string `json:"text,omitempty"`
}

// New returns an empty document stamped with this library as creator.
func New() *HAR {
	return &HAR{Log: Log{
		Version: "1.2",
		Creator: Creator{Name: "diffaudit", Version: "1.0"},
	}}
}

// Parse decodes a HAR document from JSON.
func Parse(data []byte) (*HAR, error) {
	var h HAR
	if err := json.Unmarshal(data, &h); err != nil {
		return nil, fmt.Errorf("har: parse: %w", err)
	}
	if h.Log.Version == "" {
		return nil, fmt.Errorf("har: missing log.version")
	}
	if !strings.HasPrefix(h.Log.Version, "1.") {
		return nil, fmt.Errorf("har: unsupported version %q", h.Log.Version)
	}
	return &h, nil
}

// ReadFile loads and parses a HAR file from disk.
func ReadFile(path string) (*HAR, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(data)
}

// Read parses a HAR document from a stream.
func Read(r io.Reader) (*HAR, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return Parse(data)
}

// Marshal encodes the document as indented JSON.
func (h *HAR) Marshal() ([]byte, error) {
	return json.MarshalIndent(h, "", "  ")
}

// WriteFile writes the document to disk.
func (h *HAR) WriteFile(path string) error {
	data, err := h.Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// Append adds an entry to the log.
func (h *HAR) Append(e Entry) { h.Log.Entries = append(h.Log.Entries, e) }

// Host returns the request's host (without port), derived from the URL and
// falling back to the Host header.
func (r *Request) Host() string {
	u := r.URL
	if i := strings.Index(u, "://"); i >= 0 {
		u = u[i+3:]
	}
	for _, cut := range []byte{'/', '?', '#'} {
		if i := strings.IndexByte(u, cut); i >= 0 {
			u = u[:i]
		}
	}
	if i := strings.LastIndexByte(u, ':'); i >= 0 && strings.Count(u, ":") == 1 {
		u = u[:i]
	}
	if u != "" {
		return strings.ToLower(u)
	}
	for _, hd := range r.Headers {
		if strings.EqualFold(hd.Name, "Host") {
			return strings.ToLower(hd.Value)
		}
	}
	return ""
}

// Header returns the first header value with the given name
// (case-insensitive), or "".
func (r *Request) Header(name string) string {
	for _, hd := range r.Headers {
		if strings.EqualFold(hd.Name, name) {
			return hd.Value
		}
	}
	return ""
}
