package har

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

func sampleHAR() *HAR {
	h := New()
	h.Append(Entry{
		StartedDateTime: time.Date(2023, 10, 2, 15, 4, 5, 0, time.UTC),
		Time:            12.5,
		Request: Request{
			Method:      "POST",
			URL:         "https://www.duolingo.com/2017-06-30/users?fields=id",
			HTTPVersion: "HTTP/1.1",
			Headers: []NV{
				{Name: "Host", Value: "www.duolingo.com"},
				{Name: "Content-Type", Value: "application/json"},
			},
			QueryString: []NV{{Name: "fields", Value: "id"}},
			Cookies:     []Cookie{{Name: "session", Value: "abc123"}},
			PostData: &PostData{
				MimeType: "application/json",
				Text:     `{"age":12,"username":"kid1"}`,
			},
			BodySize: 28,
		},
		Response: Response{
			Status:      200,
			StatusText:  "OK",
			HTTPVersion: "HTTP/1.1",
			Content:     Content{Size: 2, MimeType: "application/json", Text: "{}"},
		},
	})
	return h
}

func TestRoundTrip(t *testing.T) {
	h := sampleHAR()
	data, err := h.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(h, got) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, h)
	}
}

func TestFileRoundTrip(t *testing.T) {
	h := sampleHAR()
	path := filepath.Join(t.TempDir(), "trace.har")
	if err := h.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Log.Entries) != 1 {
		t.Fatalf("entries = %d, want 1", len(got.Log.Entries))
	}
	if got.Log.Entries[0].Request.URL != h.Log.Entries[0].Request.URL {
		t.Error("URL not preserved")
	}
}

func TestReadStream(t *testing.T) {
	data, _ := sampleHAR().Marshal()
	got, err := Read(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if got.Log.Version != "1.2" {
		t.Errorf("version = %q", got.Log.Version)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"invalid json":        "{",
		"missing version":     `{"log":{"entries":[]}}`,
		"unsupported version": `{"log":{"version":"2.0","entries":[]}}`,
	}
	for name, in := range cases {
		if _, err := Parse([]byte(in)); err == nil {
			t.Errorf("%s: Parse succeeded, want error", name)
		}
	}
}

func TestRequestHost(t *testing.T) {
	cases := []struct {
		url, hostHeader, want string
	}{
		{"https://www.roblox.com/games", "", "www.roblox.com"},
		{"https://Metrics.Roblox.com:443/e", "", "metrics.roblox.com"},
		{"http://quizlet.com?x=1", "", "quizlet.com"},
		{"", "fallback.example.com", "fallback.example.com"},
		{"https://tiktok.com#frag", "", "tiktok.com"},
	}
	for _, c := range cases {
		r := Request{URL: c.url}
		if c.hostHeader != "" {
			r.Headers = []NV{{Name: "host", Value: c.hostHeader}}
		}
		if got := r.Host(); got != c.want {
			t.Errorf("Host(%q) = %q, want %q", c.url, got, c.want)
		}
	}
}

func TestRequestHeader(t *testing.T) {
	r := Request{Headers: []NV{
		{Name: "Content-Type", Value: "application/json"},
		{Name: "X-Custom", Value: "a"},
		{Name: "x-custom", Value: "b"},
	}}
	if got := r.Header("content-type"); got != "application/json" {
		t.Errorf("Header(content-type) = %q", got)
	}
	if got := r.Header("X-CUSTOM"); got != "a" {
		t.Errorf("Header(X-CUSTOM) = %q, want first match", got)
	}
	if got := r.Header("missing"); got != "" {
		t.Errorf("Header(missing) = %q", got)
	}
}

func TestChromeDevToolsCompatibility(t *testing.T) {
	// A trimmed entry as exported by Chrome DevTools, with fields this
	// library does not model; parsing must tolerate them.
	raw := `{
	  "log": {
	    "version": "1.2",
	    "creator": {"name": "WebInspector", "version": "537.36"},
	    "pages": [{"startedDateTime":"2023-10-02T15:04:05.000Z","id":"page_1","title":"https://quizlet.com"}],
	    "entries": [{
	      "_initiator": {"type": "script"},
	      "_priority": "High",
	      "startedDateTime": "2023-10-02T15:04:05.123Z",
	      "time": 45.2,
	      "request": {
	        "method": "GET",
	        "url": "https://ads.pubmatic.com/AdServer/js/pug?rnd=123",
	        "httpVersion": "http/2.0",
	        "headers": [{"name": "User-Agent", "value": "Mozilla/5.0"}],
	        "queryString": [{"name": "rnd", "value": "123"}],
	        "cookies": [],
	        "headersSize": -1,
	        "bodySize": 0
	      },
	      "response": {
	        "status": 200, "statusText": "", "httpVersion": "http/2.0",
	        "headers": [], "cookies": [],
	        "content": {"size": 0, "mimeType": "image/gif"},
	        "redirectURL": "", "headersSize": -1, "bodySize": 0,
	        "_transferSize": 120
	      },
	      "cache": {},
	      "timings": {"blocked": 1, "dns": -1, "connect": -1, "send": 0, "wait": 40, "receive": 4}
	    }]
	  }
	}`
	h, err := Parse([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	e := h.Log.Entries[0]
	if e.Request.Host() != "ads.pubmatic.com" {
		t.Errorf("host = %q", e.Request.Host())
	}
	if !strings.HasPrefix(e.Request.URL, "https://ads.pubmatic.com/") {
		t.Errorf("url = %q", e.Request.URL)
	}
	if e.Request.QueryString[0].Name != "rnd" {
		t.Error("query string not parsed")
	}
}
