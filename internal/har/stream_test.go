package har

import (
	"bytes"
	"encoding/json"
	"io"
	"reflect"
	"strings"
	"testing"
	"testing/iotest"
	"time"
)

func streamSampleHAR() *HAR {
	h := New()
	h.Log.Pages = []Page{{ID: "page_1", Title: "https://example.com/"}}
	for i := 0; i < 3; i++ {
		h.Append(Entry{
			Pageref:         "page_1",
			StartedDateTime: time.Date(2023, 10, 2, 15, 0, i, 0, time.UTC),
			Time:            12.5,
			Connection:      "7",
			Request: Request{
				Method:      "POST",
				URL:         "https://api.example.com/v1/events?uid=42",
				HTTPVersion: "HTTP/1.1",
				Headers:     []NV{{Name: "Host", Value: "api.example.com"}},
				Cookies:     []Cookie{{Name: "sid", Value: "abc"}},
				PostData:    &PostData{MimeType: "application/json", Text: `{"k":"v"}`},
			},
			Response: Response{Status: 200, StatusText: "OK", Content: Content{Size: 2, MimeType: "application/json"}},
		})
	}
	return h
}

// drain collects every entry from a stream decoder.
func drain(t *testing.T, d *StreamDecoder) []Entry {
	t.Helper()
	var out []Entry
	for {
		e, err := d.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		out = append(out, *e)
	}
}

func TestStreamDecoderMatchesParse(t *testing.T) {
	data, err := streamSampleHAR().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	d := NewStreamDecoder(bytes.NewReader(data))
	got := drain(t, d)
	if !reflect.DeepEqual(got, parsed.Log.Entries) {
		t.Errorf("streamed entries differ from Parse\n got %+v\nwant %+v", got, parsed.Log.Entries)
	}
	if d.Version() != "1.2" {
		t.Errorf("version = %q", d.Version())
	}
	if d.Creator().Name != "diffaudit" {
		t.Errorf("creator = %+v", d.Creator())
	}
}

// TestStreamDecoderFieldOrder proves the decoder is insensitive to log
// member order, including version trailing the entries array.
func TestStreamDecoderFieldOrder(t *testing.T) {
	doc := `{"log":{"entries":[{"request":{"method":"GET","url":"https://a.example/"}}],` +
		`"pages":[{"id":"p"}],"version":"1.2","creator":{"name":"x","version":"0"}}}`
	d := NewStreamDecoder(strings.NewReader(doc))
	got := drain(t, d)
	if len(got) != 1 || got[0].Request.Method != "GET" {
		t.Fatalf("entries = %+v", got)
	}
	if d.Version() != "1.2" {
		t.Errorf("trailing version not captured: %q", d.Version())
	}
}

func TestStreamDecoderErrors(t *testing.T) {
	cases := map[string]string{
		"missing version":     `{"log":{"entries":[]}}`,
		"unsupported version": `{"log":{"version":"2.0","entries":[]}}`,
		"truncated":           `{"log":{"version":"1.2","entries":[{"request":`,
		"not json":            `got 99 problems`,
		"duplicate entries":   `{"log":{"version":"1.2","entries":[],"entries":[]}}`,
	}
	for name, doc := range cases {
		d := NewStreamDecoder(strings.NewReader(doc))
		var err error
		for err == nil {
			_, err = d.Next()
		}
		if err == io.EOF {
			t.Errorf("%s: accepted", name)
		}
		// The error must stick.
		if _, err2 := d.Next(); err2 != err && err != io.EOF {
			t.Errorf("%s: error did not stick: %v vs %v", name, err2, err)
		}
	}
}

// TestStreamDecoderEmptyEntries confirms a log with no entries member and
// one with an empty array both yield zero entries.
func TestStreamDecoderEmptyEntries(t *testing.T) {
	for _, doc := range []string{
		`{"log":{"version":"1.2","creator":{"name":"x","version":"0"}}}`,
		`{"log":{"version":"1.2","entries":[]}}`,
	} {
		d := NewStreamDecoder(strings.NewReader(doc))
		if got := drain(t, d); len(got) != 0 {
			t.Errorf("%s: entries = %d", doc, len(got))
		}
	}
}

// TestStreamDecoderLargeDocument verifies the decoder handles a document
// bigger than any single read and preserves entry order.
func TestStreamDecoderLargeDocument(t *testing.T) {
	h := New()
	for i := 0; i < 500; i++ {
		h.Append(Entry{Request: Request{Method: "GET", URL: "https://example.com/", Headers: []NV{{Name: "X-I", Value: string(rune('a' + i%26))}}}})
	}
	data, err := h.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	d := NewStreamDecoder(iotest.OneByteReader(bytes.NewReader(data)))
	got := drain(t, d)
	if len(got) != 500 {
		t.Fatalf("entries = %d", len(got))
	}
	for i, e := range got {
		if e.Request.Headers[0].Value != string(rune('a'+i%26)) {
			t.Fatalf("entry %d out of order", i)
		}
	}
}

// TestStreamDecoderRoundTripJSON confirms streamed entries re-marshal to
// the same JSON Parse produces (no field loss through the Entry decode).
func TestStreamDecoderRoundTripJSON(t *testing.T) {
	data, err := streamSampleHAR().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	parsed, _ := Parse(data)
	d := NewStreamDecoder(bytes.NewReader(data))
	streamed := drain(t, d)
	a, _ := json.Marshal(parsed.Log.Entries)
	b, _ := json.Marshal(streamed)
	if !bytes.Equal(a, b) {
		t.Error("re-marshaled entries differ between Parse and stream decode")
	}
}
