package har

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// StreamDecoder decodes a HAR document incrementally: entries are yielded
// one at a time from the underlying reader, so a multi-gigabyte capture is
// audited without ever holding more than one entry in memory. The decoder
// tolerates log fields in any order (Chrome puts version first; some
// exporters put entries first), which means version validation is deferred
// to whenever the field is actually seen — possibly the final Next call.
type StreamDecoder struct {
	dec *json.Decoder
	// state tracks the cursor position in the document.
	state   streamState
	version string
	creator Creator
	comment string
	// err sticks: once the decoder fails or finishes, it stays failed or
	// finished.
	err error
}

type streamState int

const (
	streamStart     streamState = iota // nothing consumed yet
	streamInEntries                    // positioned inside log.entries
	streamDone                         // document fully consumed
)

// NewStreamDecoder returns a decoder reading a HAR document from r.
// Call Next until it returns io.EOF.
func NewStreamDecoder(r io.Reader) *StreamDecoder {
	return &StreamDecoder{dec: json.NewDecoder(r)}
}

// Version returns log.version if it has been seen yet ("" before then; the
// field may trail the entries array, in which case it is only available
// after Next returns io.EOF).
func (d *StreamDecoder) Version() string { return d.version }

// Creator returns log.creator if seen yet.
func (d *StreamDecoder) Creator() Creator { return d.creator }

// Next returns the next entry of log.entries. It returns io.EOF after the
// last entry once the rest of the document has been consumed and
// validated, or a descriptive error on malformed input.
func (d *StreamDecoder) Next() (*Entry, error) {
	if d.err != nil {
		return nil, d.err
	}
	e, err := d.next()
	if err != nil {
		d.err = err
		return nil, err
	}
	return e, nil
}

func (d *StreamDecoder) next() (*Entry, error) {
	if d.state == streamStart {
		if err := d.seekEntries(); err != nil {
			return nil, err
		}
	}
	if d.state == streamInEntries {
		if d.dec.More() {
			var e Entry
			if err := d.dec.Decode(&e); err != nil {
				return nil, fmt.Errorf("har: stream: entry: %w", err)
			}
			return &e, nil
		}
		// Consume the closing ']' of entries, then the rest of the log
		// object and document.
		if _, err := d.expectDelim(']'); err != nil {
			return nil, err
		}
		if err := d.finish(); err != nil {
			return nil, err
		}
	}
	return nil, io.EOF
}

// seekEntries walks the document to the opening '[' of log.entries,
// decoding any log metadata fields encountered on the way. A document
// whose log has no entries field at all degrades to zero entries.
func (d *StreamDecoder) seekEntries() error {
	if _, err := d.expectDelim('{'); err != nil {
		return err
	}
	for {
		key, end, err := d.nextKey()
		if err != nil {
			return err
		}
		if end {
			// Top-level object closed without a log member.
			d.state = streamDone
			return d.validate()
		}
		if key != "log" {
			if err := d.skipValue(); err != nil {
				return err
			}
			continue
		}
		break
	}
	if _, err := d.expectDelim('{'); err != nil {
		return err
	}
	for {
		key, end, err := d.nextKey()
		if err != nil {
			return err
		}
		if end {
			// Log closed without entries: finish the document.
			return d.finishTop()
		}
		if key == "entries" {
			if _, err := d.expectDelim('['); err != nil {
				return err
			}
			d.state = streamInEntries
			return nil
		}
		if err := d.logField(key); err != nil {
			return err
		}
	}
}

// finish consumes everything after the entries array: trailing log fields,
// the log object close, and the top-level object close.
func (d *StreamDecoder) finish() error {
	for {
		key, end, err := d.nextKey()
		if err != nil {
			return err
		}
		if end {
			break
		}
		if key == "entries" {
			return fmt.Errorf("har: stream: duplicate log.entries")
		}
		if err := d.logField(key); err != nil {
			return err
		}
	}
	return d.finishTop()
}

// finishTop consumes trailing top-level members and the document close.
func (d *StreamDecoder) finishTop() error {
	for {
		key, end, err := d.nextKey()
		if err != nil {
			return err
		}
		if end {
			break
		}
		_ = key
		if err := d.skipValue(); err != nil {
			return err
		}
	}
	d.state = streamDone
	return d.validate()
}

// logField decodes one non-entries log member into the decoder's metadata.
func (d *StreamDecoder) logField(key string) error {
	var err error
	switch key {
	case "version":
		err = d.dec.Decode(&d.version)
		if err == nil && d.version != "" && !strings.HasPrefix(d.version, "1.") {
			return fmt.Errorf("har: unsupported version %q", d.version)
		}
	case "creator":
		err = d.dec.Decode(&d.creator)
	case "comment":
		err = d.dec.Decode(&d.comment)
	default:
		// pages, browser, and any extension fields: skipped, the audit
		// never reads them.
		err = d.skipValue()
	}
	if err != nil {
		return fmt.Errorf("har: stream: log.%s: %w", key, err)
	}
	return nil
}

// validate applies the same document checks Parse does, once the whole
// document has been seen.
func (d *StreamDecoder) validate() error {
	if d.version == "" {
		return fmt.Errorf("har: missing log.version")
	}
	return nil
}

// nextKey reads the next object member name, or reports the enclosing
// object's closing '}'.
func (d *StreamDecoder) nextKey() (key string, end bool, err error) {
	tok, err := d.dec.Token()
	if err != nil {
		return "", false, fmt.Errorf("har: stream: %w", streamEOF(err))
	}
	switch t := tok.(type) {
	case json.Delim:
		if t == '}' {
			return "", true, nil
		}
		return "", false, fmt.Errorf("har: stream: unexpected %v", t)
	case string:
		return t, false, nil
	default:
		return "", false, fmt.Errorf("har: stream: unexpected token %v", tok)
	}
}

// expectDelim consumes one token and requires it to be the given delimiter.
func (d *StreamDecoder) expectDelim(want json.Delim) (json.Delim, error) {
	tok, err := d.dec.Token()
	if err != nil {
		return 0, fmt.Errorf("har: stream: %w", streamEOF(err))
	}
	delim, ok := tok.(json.Delim)
	if !ok || delim != want {
		return 0, fmt.Errorf("har: stream: expected %q, got %v", want, tok)
	}
	return delim, nil
}

// skipValue consumes one complete JSON value without retaining it.
func (d *StreamDecoder) skipValue() error {
	var raw json.RawMessage
	if err := d.dec.Decode(&raw); err != nil {
		return fmt.Errorf("har: stream: %w", streamEOF(err))
	}
	return nil
}

// streamEOF maps a bare io.EOF from the JSON tokenizer (truncated
// document) to an unambiguous error, so callers never mistake it for the
// decoder's own end-of-entries io.EOF.
func streamEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
