// Package domains extracts effective second-level domains (eSLDs) from fully
// qualified domain names, mirroring the role the tldextract library plays in
// the DiffAudit paper. Matching follows the public suffix list algorithm:
// the longest matching suffix rule wins, wildcard rules ("*.ck") match one
// extra label, and exception rules ("!www.ck") override wildcards.
//
// The embedded rule set is a subset of the public suffix list sufficient for
// the domains observed in the paper's dataset plus the common generic and
// country-code suffixes; callers can extend it with AddRule.
package domains

import (
	"strings"
	"sync"
)

// Result is the decomposition of a fully qualified domain name.
type Result struct {
	// Subdomain is everything left of the registered domain ("metrics" in
	// metrics.roblox.com). Empty when the FQDN is the registered domain.
	Subdomain string
	// Domain is the registrable label ("roblox").
	Domain string
	// Suffix is the public suffix ("com", "co.uk").
	Suffix string
}

// ESLD returns the effective second-level domain ("roblox.com"), or the
// empty string when the input had no registrable domain.
func (r Result) ESLD() string {
	if r.Domain == "" {
		return ""
	}
	if r.Suffix == "" {
		return r.Domain
	}
	return r.Domain + "." + r.Suffix
}

// FQDN reconstructs the input name.
func (r Result) FQDN() string {
	parts := make([]string, 0, 3)
	if r.Subdomain != "" {
		parts = append(parts, r.Subdomain)
	}
	if r.Domain != "" {
		parts = append(parts, r.Domain)
	}
	if r.Suffix != "" {
		parts = append(parts, r.Suffix)
	}
	return strings.Join(parts, ".")
}

// ruleSet holds public suffix rules keyed by the normalized rule text
// without wildcard/exception markers.
type ruleSet struct {
	mu    sync.RWMutex
	exact map[string]bool // "com", "co.uk"
	wild  map[string]bool // "ck" for "*.ck"
	exc   map[string]bool // "www.ck" for "!www.ck"
}

var rules = newRuleSet()

func newRuleSet() *ruleSet {
	rs := &ruleSet{
		exact: make(map[string]bool, len(defaultSuffixes)),
		wild:  make(map[string]bool),
		exc:   make(map[string]bool),
	}
	for _, r := range defaultSuffixes {
		rs.add(r)
	}
	return rs
}

func (rs *ruleSet) add(rule string) {
	rule = strings.ToLower(strings.TrimSpace(rule))
	if rule == "" || strings.HasPrefix(rule, "//") {
		return
	}
	switch {
	case strings.HasPrefix(rule, "!"):
		rs.exc[rule[1:]] = true
	case strings.HasPrefix(rule, "*."):
		rs.wild[rule[2:]] = true
	default:
		rs.exact[rule] = true
	}
}

// AddRule registers an extra public suffix rule at runtime, using public
// suffix list syntax ("dev", "*.compute.amazonaws.com", "!special.ck").
func AddRule(rule string) {
	rules.mu.Lock()
	defer rules.mu.Unlock()
	rules.add(rule)
}

// publicSuffixLen returns the number of trailing labels that form the public
// suffix of labels, per the PSL algorithm. A name with no matching rule uses
// the implicit "*" rule (suffix = last label).
func publicSuffixLen(labels []string) int {
	rules.mu.RLock()
	defer rules.mu.RUnlock()
	best := 1 // implicit "*" rule
	for i := 0; i < len(labels); i++ {
		cand := strings.Join(labels[i:], ".")
		n := len(labels) - i
		if rules.exc[cand] {
			// Exception rule: the suffix is the rule minus its left label.
			return n - 1
		}
		if rules.exact[cand] && n > best {
			best = n
		}
		if i > 0 && rules.wild[cand] && n+1 > best {
			best = n + 1
		}
	}
	if best > len(labels) {
		best = len(labels)
	}
	return best
}

// Extract decomposes an FQDN (or URL host) into subdomain, domain and public
// suffix. Inputs are lower-cased; trailing dots, ports and brackets are
// stripped. IP addresses and single-label hosts yield Domain-only results.
func Extract(fqdn string) Result {
	host := normalizeHost(fqdn)
	if host == "" {
		return Result{}
	}
	if isIP(host) {
		return Result{Domain: host}
	}
	labels := strings.Split(host, ".")
	if len(labels) == 1 {
		rules.mu.RLock()
		isSuffix := rules.exact[host]
		rules.mu.RUnlock()
		if isSuffix {
			return Result{Suffix: host}
		}
		return Result{Domain: labels[0]}
	}
	sl := publicSuffixLen(labels)
	if sl >= len(labels) {
		// Entire name is a public suffix: no registrable domain.
		return Result{Suffix: host}
	}
	suffix := strings.Join(labels[len(labels)-sl:], ".")
	domain := labels[len(labels)-sl-1]
	sub := strings.Join(labels[:len(labels)-sl-1], ".")
	return Result{Subdomain: sub, Domain: domain, Suffix: suffix}
}

// ESLD is shorthand for Extract(fqdn).ESLD().
func ESLD(fqdn string) string { return Extract(fqdn).ESLD() }

// normalizeHost lowers the name and removes scheme/port/path remnants so
// both bare FQDNs and URL hosts are accepted.
func normalizeHost(s string) string {
	s = strings.TrimSpace(strings.ToLower(s))
	if i := strings.Index(s, "://"); i >= 0 {
		s = s[i+3:]
	}
	for _, cut := range []byte{'/', '?', '#'} {
		if i := strings.IndexByte(s, cut); i >= 0 {
			s = s[:i]
		}
	}
	if strings.HasPrefix(s, "[") { // bracketed IPv6, possibly with port
		if i := strings.IndexByte(s, ']'); i >= 0 {
			return s[1:i]
		}
		return strings.TrimPrefix(s, "[")
	}
	// Strip a port only when the remainder is not a bare IPv6 address.
	if i := strings.LastIndexByte(s, ':'); i >= 0 && strings.Count(s, ":") == 1 {
		s = s[:i]
	}
	return strings.Trim(s, ".")
}

// isIP reports whether host looks like an IPv4 or IPv6 literal.
func isIP(host string) bool {
	if strings.Contains(host, ":") {
		return true // IPv6 (colons never appear in hostnames post-normalization)
	}
	dots := 0
	for _, r := range host {
		switch {
		case r == '.':
			dots++
		case r < '0' || r > '9':
			return false
		}
	}
	return dots == 3
}

// LoadPSL merges public suffix rules in the official file format (one rule
// per line, "//" comments) into the live rule set, for callers that want
// the complete list instead of the embedded subset.
func LoadPSL(data []byte) int {
	n := 0
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "//") {
			continue
		}
		AddRule(line)
		n++
	}
	return n
}
