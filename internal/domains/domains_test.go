package domains

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestExtractBasic(t *testing.T) {
	cases := []struct {
		in                  string
		sub, domain, suffix string
	}{
		{"www.roblox.com", "www", "roblox", "com"},
		{"roblox.com", "", "roblox", "com"},
		{"metrics.roblox.com", "metrics", "roblox", "com"},
		{"browser.events.data.microsoft.com", "browser.events.data", "microsoft", "com"},
		{"google-analytics.com", "", "google-analytics", "com"},
		{"doubleclick.net", "", "doubleclick", "net"},
		{"d1234.cloudfront.net", "d1234", "cloudfront", "net"},
		{"kids.youtube.com", "kids", "youtube", "com"},
		{"clarity.ms", "", "clarity", "ms"},
		{"bbc.co.uk", "", "bbc", "co.uk"},
		{"forums.bbc.co.uk", "forums", "bbc", "co.uk"},
		{"example.k12.ca.us", "", "example", "k12.ca.us"},
		{"a.b.example.k12.ca.us", "a.b", "example", "k12.ca.us"},
	}
	for _, c := range cases {
		got := Extract(c.in)
		if got.Subdomain != c.sub || got.Domain != c.domain || got.Suffix != c.suffix {
			t.Errorf("Extract(%q) = %+v, want {%q %q %q}", c.in, got, c.sub, c.domain, c.suffix)
		}
	}
}

func TestExtractWildcardAndException(t *testing.T) {
	// "*.ck" makes foo.ck a public suffix, so bar.foo.ck registers bar.
	r := Extract("bar.foo.ck")
	if r.ESLD() != "bar.foo.ck" || r.Domain != "bar" || r.Suffix != "foo.ck" {
		t.Errorf("wildcard: Extract(bar.foo.ck) = %+v", r)
	}
	// A bare wildcard-matched name is all suffix: nothing registrable.
	r = Extract("foo.ck")
	if r.ESLD() != "" {
		t.Errorf("foo.ck should have no eSLD, got %q (%+v)", r.ESLD(), r)
	}
	// "!www.ck" exempts www.ck: it registers under .ck.
	r = Extract("www.ck")
	if r.ESLD() != "www.ck" || r.Domain != "www" || r.Suffix != "ck" {
		t.Errorf("exception: Extract(www.ck) = %+v", r)
	}
	r = Extract("a.www.ck")
	if r.ESLD() != "www.ck" || r.Subdomain != "a" {
		t.Errorf("exception with subdomain: Extract(a.www.ck) = %+v", r)
	}
}

func TestExtractURLForms(t *testing.T) {
	cases := map[string]string{
		"https://www.tiktok.com/video/123?x=1": "tiktok.com",
		"http://duolingo.com/":                 "duolingo.com",
		"quizlet.com:443":                      "quizlet.com",
		"WWW.Minecraft.NET.":                   "minecraft.net",
		"https://cdn.example.co.uk/path#frag":  "example.co.uk",
	}
	for in, want := range cases {
		if got := ESLD(in); got != want {
			t.Errorf("ESLD(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestExtractIPAndEdge(t *testing.T) {
	for _, ip := range []string{"192.168.1.1", "8.8.8.8", "[2001:db8::1]:443", "2001:db8::1"} {
		r := Extract(ip)
		if r.Suffix != "" || r.Subdomain != "" || r.Domain == "" {
			t.Errorf("Extract(%q) = %+v, want bare-domain result", ip, r)
		}
	}
	if got := Extract(""); got != (Result{}) {
		t.Errorf("Extract(\"\") = %+v, want zero", got)
	}
	if got := Extract("localhost"); got.Domain != "localhost" || got.Suffix != "" {
		t.Errorf("Extract(localhost) = %+v", got)
	}
	// A bare public suffix has no registrable domain.
	if got := Extract("co.uk"); got.ESLD() != "" || got.Suffix != "co.uk" {
		t.Errorf("Extract(co.uk) = %+v", got)
	}
	if got := Extract("com"); got.ESLD() != "" {
		t.Errorf("Extract(com) = %+v", got)
	}
}

func TestAddRule(t *testing.T) {
	if got := ESLD("myapp.testpages.example"); got != "testpages.example" {
		t.Fatalf("pre-rule: %q", got)
	}
	AddRule("testpages.example")
	if got := ESLD("myapp.testpages.example"); got != "myapp.testpages.example" {
		t.Errorf("post-rule: %q", got)
	}
	AddRule("  ") // no-op
	AddRule("// comment")
}

func TestFQDNRoundTrip(t *testing.T) {
	for _, in := range []string{
		"www.roblox.com", "roblox.com", "a.b.c.example.co.uk",
		"bar.foo.ck", "www.ck",
	} {
		if got := Extract(in).FQDN(); got != in {
			t.Errorf("FQDN round trip %q -> %q", in, got)
		}
	}
}

// TestExtractIdempotent checks Extract(ESLD(x)).ESLD() == ESLD(x).
func TestExtractIdempotent(t *testing.T) {
	f := func(sub, dom uint8) bool {
		host := hostFrom(sub, dom)
		e := ESLD(host)
		return e == "" || ESLD(e) == e
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestESLDIsSuffixOfInput checks that the eSLD is always a trailing
// dot-boundary substring of the normalized input.
func TestESLDIsSuffixOfInput(t *testing.T) {
	f := func(sub, dom uint8) bool {
		host := hostFrom(sub, dom)
		e := ESLD(host)
		return e == "" || host == e || strings.HasSuffix(host, "."+e)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// hostFrom builds deterministic syntactic hostnames from two bytes.
func hostFrom(sub, dom uint8) string {
	subs := []string{"", "www", "api", "cdn.static", "a.b.c"}
	doms := []string{"example.com", "test.co.uk", "foo.ck", "site.io", "x.org", "data.net"}
	s := subs[int(sub)%len(subs)]
	d := doms[int(dom)%len(doms)]
	if s == "" {
		return d
	}
	return s + "." + d
}

func TestLoadPSL(t *testing.T) {
	n := LoadPSL([]byte(`// ===BEGIN TEST===
pslzone

*.pslwild
!ok.pslwild
// comment
`))
	if n != 3 {
		t.Fatalf("rules loaded = %d", n)
	}
	if got := ESLD("site.pslzone"); got != "site.pslzone" {
		t.Errorf("pslzone: %q", got)
	}
	if got := ESLD("a.b.pslwild"); got != "a.b.pslwild" {
		t.Errorf("pslwild: %q", got)
	}
	if got := ESLD("ok.pslwild"); got != "ok.pslwild" {
		t.Errorf("psl exception: %q", got)
	}
}
