package domains

// defaultSuffixes is the embedded public suffix list subset. It covers the
// generic TLDs, the country-code suffixes, and the private-registry suffixes
// needed to resolve every domain in the synthesized DiffAudit dataset, plus
// wildcard and exception rules exercising the full PSL algorithm.
var defaultSuffixes = []string{
	// Generic TLDs.
	"com", "net", "org", "edu", "gov", "mil", "int", "io", "co", "tv",
	"me", "app", "dev", "ai", "gg", "ly", "to", "fm", "im", "cc", "ws",
	"info", "biz", "name", "mobi", "cloud", "online", "site", "store",
	"xyz", "live", "news", "media", "games", "chat", "social", "video",
	"link", "click", "email", "network", "systems", "services", "agency",
	"studio", "design", "digital", "world", "today", "zone", "run",

	// Country codes (flat).
	"us", "uk", "ca", "de", "fr", "es", "it", "nl", "se", "no", "fi",
	"dk", "pl", "ru", "cn", "jp", "kr", "in", "br", "mx", "ar", "cl",
	"au", "nz", "za", "sg", "hk", "tw", "th", "vn", "id", "my", "ph",
	"tr", "sa", "ae", "il", "ie", "pt", "gr", "cz", "sk", "hu", "ro",
	"bg", "hr", "si", "lt", "lv", "ee", "is", "ch", "at", "be", "lu",

	// Multi-label country suffixes.
	"co.uk", "org.uk", "ac.uk", "gov.uk", "me.uk", "net.uk",
	"com.au", "net.au", "org.au", "edu.au", "gov.au",
	"co.jp", "ne.jp", "or.jp", "ac.jp", "go.jp",
	"com.br", "net.br", "org.br",
	"co.kr", "or.kr", "go.kr",
	"com.cn", "net.cn", "org.cn", "gov.cn",
	"co.in", "net.in", "org.in", "firm.in", "gen.in",
	"com.mx", "org.mx", "gob.mx",
	"co.nz", "net.nz", "org.nz",
	"co.za", "org.za", "web.za",
	"com.sg", "edu.sg", "gov.sg",
	"com.tw", "org.tw", "idv.tw",
	"com.hk", "org.hk", "edu.hk",
	"com.tr", "org.tr", "gen.tr",
	"com.ar", "org.ar", "net.ar",
	"co.il", "org.il", "ac.il",

	// US state/k12 hierarchy (exercises deep suffixes).
	"k12.ca.us", "k12.ny.us", "cc.ca.us", "state.ca.us",

	// Wildcard and exception rules (exercise the full algorithm, as in the
	// PSL for .ck and .bd). Note: private-section PSL entries such as
	// cloudfront.net are deliberately absent — tldextract's default mode,
	// used by the paper, treats cloudfront.net itself as an eSLD.
	"*.ck", "!www.ck",
	"*.bd",
}
