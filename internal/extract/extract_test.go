package extract

import (
	"bytes"
	"encoding/json"
	"mime/multipart"
	"strings"
	"testing"
	"testing/quick"
)

func keysBySource(kvs []KV, src Source) map[string]bool {
	out := map[string]bool{}
	for _, kv := range kvs {
		if kv.Source == src {
			out[kv.Key] = true
		}
	}
	return out
}

func TestExtractQuery(t *testing.T) {
	req := RequestView{
		URL: "https://ads.pubmatic.com/AdServer?adid=XYZ&gdpr_consent=1&lat=34.1&empty=&os=android#frag",
	}
	kvs := Extract(req, DefaultOptions())
	got := keysBySource(kvs, SourceQuery)
	for _, want := range []string{"adid", "gdpr_consent", "lat", "empty", "os"} {
		if !got[want] {
			t.Errorf("query key %q missing (got %v)", want, got)
		}
	}
	if got["frag"] {
		t.Error("fragment leaked into query keys")
	}
}

func TestExtractQueryEscapes(t *testing.T) {
	req := RequestView{URL: "https://x.com/p?user%5Fid=1&bad%zz=2"}
	kvs := Extract(req, DefaultOptions())
	got := keysBySource(kvs, SourceQuery)
	if !got["user_id"] {
		t.Errorf("escaped key not decoded: %v", got)
	}
	if !got["bad%zz"] {
		t.Errorf("undecodable key not kept raw: %v", got)
	}
}

func TestExtractHeadersAndCookies(t *testing.T) {
	req := RequestView{
		URL: "https://www.roblox.com/games",
		Headers: []KVPair{
			{"User-Agent", "Mozilla/5.0"},
			{"Referer", "https://www.roblox.com/"},
			{"Content-Length", "42"},
			{"Cookie", "ignored-here"},
			{":authority", "www.roblox.com"},
		},
		Cookies: []KVPair{
			{"RBXSessionTracker", "sid123"},
			{"GuestData", "UserID=-1"},
		},
	}
	kvs := Extract(req, DefaultOptions())
	h := keysBySource(kvs, SourceHeader)
	if !h["User-Agent"] || !h["Referer"] {
		t.Errorf("headers missing: %v", h)
	}
	if h["Content-Length"] {
		t.Error("standard header not skipped")
	}
	if h["Cookie"] || h[":authority"] {
		t.Error("cookie/pseudo headers leaked")
	}
	c := keysBySource(kvs, SourceCookie)
	if !c["RBXSessionTracker"] || !c["GuestData"] {
		t.Errorf("cookies missing: %v", c)
	}
}

func TestExtractJSONBodyNested(t *testing.T) {
	body := `{
	  "user": {"username": "kid1", "age": 12, "email": "k@x.com"},
	  "device": {"os": "Android", "hw": {"model": "Pixel 6", "imei": "35-2099"}},
	  "events": [{"event_name": "lesson_start", "ts": 1696258845}],
	  "blob": "{\"inner_adid\":\"abc\",\"depth2\":{\"gps_lat\":1.5}}"
	}`
	req := RequestView{URL: "https://excess.duolingo.com/batch", BodyMIME: "application/json", Body: []byte(body)}
	kvs := Extract(req, DefaultOptions())
	got := keysBySource(kvs, SourceBody)
	for _, want := range []string{
		"username", "age", "email", "os", "model", "imei",
		"event_name", "ts", "inner_adid", "gps_lat", "depth2",
	} {
		if !got[want] {
			t.Errorf("nested key %q missing", want)
		}
	}
	// Paths must be dotted.
	var foundPath bool
	for _, kv := range kvs {
		if kv.Path == "device.hw.imei" {
			foundPath = true
		}
	}
	if !foundPath {
		t.Error("dotted path device.hw.imei missing")
	}
}

func TestExtractFormBody(t *testing.T) {
	req := RequestView{
		URL:      "https://www.minecraft.net/login",
		BodyMIME: "application/x-www-form-urlencoded",
		Body:     []byte("username=steve&password=hunter2&remember=1"),
	}
	got := keysBySource(Extract(req, DefaultOptions()), SourceBody)
	for _, want := range []string{"username", "password", "remember"} {
		if !got[want] {
			t.Errorf("form key %q missing", want)
		}
	}
}

func TestExtractJSONInQueryValue(t *testing.T) {
	req := RequestView{URL: `https://t.co/p?payload={"device_id":"d1","loc":{"city":"irvine"}}`}
	got := keysBySource(Extract(req, DefaultOptions()), SourceQuery)
	if !got["device_id"] || !got["city"] || !got["payload"] {
		t.Errorf("json-in-query keys missing: %v", got)
	}
}

func TestFlatOnlyAblation(t *testing.T) {
	body := `{"top":{"nested":{"deep_key":1}},"blob":"{\"embedded\":2}"}`
	req := RequestView{URL: "https://x.com/a", BodyMIME: "application/json", Body: []byte(body)}
	full := keysBySource(Extract(req, DefaultOptions()), SourceBody)
	flat := keysBySource(Extract(req, Options{FlatOnly: true, MaxDepth: 8, SkipStandardHeaders: true}), SourceBody)
	if !full["deep_key"] || !full["embedded"] {
		t.Errorf("full extraction missing deep keys: %v", full)
	}
	if flat["deep_key"] || flat["embedded"] {
		t.Errorf("flat extraction should not recurse: %v", flat)
	}
	if !flat["top"] || !flat["blob"] {
		t.Errorf("flat extraction missing top-level keys: %v", flat)
	}
	if len(flat) >= len(full) {
		t.Error("flat should find strictly fewer keys here")
	}
}

func TestMaxDepthBound(t *testing.T) {
	// Build JSON nested 20 deep; defaults stop at depth 8.
	inner := `{"leaf":1}`
	for i := 0; i < 20; i++ {
		inner = `{"level` + string(rune('a'+i%26)) + `":` + inner + `}`
	}
	req := RequestView{URL: "https://x.com/a", BodyMIME: "application/json", Body: []byte(inner)}
	got := keysBySource(Extract(req, DefaultOptions()), SourceBody)
	if got["leaf"] {
		t.Error("depth bound not enforced")
	}
	if len(got) == 0 {
		t.Error("outer levels should still be extracted")
	}
}

func TestMalformedBodiesIgnored(t *testing.T) {
	for _, body := range []string{"{not json", "<xml/>", "\x00\x01\x02", ""} {
		req := RequestView{URL: "https://x.com/a", BodyMIME: "application/json", Body: []byte(body)}
		kvs := Extract(req, DefaultOptions())
		if n := len(keysBySource(kvs, SourceBody)); n != 0 {
			t.Errorf("body %q extracted %d keys", body, n)
		}
	}
}

func TestArrayOfObjects(t *testing.T) {
	body := `[{"batch_event":"click"},{"batch_event":"scroll","extra_field":1}]`
	req := RequestView{URL: "https://x.com/a", BodyMIME: "application/json", Body: []byte(body)}
	got := keysBySource(Extract(req, DefaultOptions()), SourceBody)
	if !got["batch_event"] || !got["extra_field"] {
		t.Errorf("array keys missing: %v", got)
	}
}

func TestUniqueKeys(t *testing.T) {
	kvs := []KV{{Key: "b"}, {Key: "a"}, {Key: "b"}, {Key: "c"}}
	got := UniqueKeys(kvs)
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("UniqueKeys = %v", got)
	}
}

func TestSourceString(t *testing.T) {
	names := map[Source]string{
		SourceQuery: "query", SourceHeader: "header",
		SourceCookie: "cookie", SourceBody: "body", Source(9): "unknown",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
}

func TestValueClipping(t *testing.T) {
	long := strings.Repeat("v", 500)
	req := RequestView{URL: "https://x.com/?k=" + long}
	for _, kv := range Extract(req, DefaultOptions()) {
		if len(kv.Value) > 120 {
			t.Errorf("value not clipped: %d bytes", len(kv.Value))
		}
	}
}

// Property: every key present in a flat JSON object is extracted exactly.
func TestFlatJSONKeysExtracted(t *testing.T) {
	f := func(keys []string) bool {
		obj := map[string]int{}
		valid := map[string]bool{}
		for i, k := range keys {
			k = strings.Map(func(r rune) rune {
				if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '_' {
					return r
				}
				return -1
			}, k)
			if k == "" {
				continue
			}
			obj[k] = i
			valid[k] = true
		}
		body, err := json.Marshal(obj)
		if err != nil {
			return false
		}
		req := RequestView{URL: "https://x.com/a", BodyMIME: "application/json", Body: body}
		got := keysBySource(Extract(req, DefaultOptions()), SourceBody)
		if len(got) != len(valid) {
			return false
		}
		for k := range valid {
			if !got[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestExtractMultipart(t *testing.T) {
	var buf bytes.Buffer
	w := multipart.NewWriter(&buf)
	_ = w.WriteField("username", "kid1")
	_ = w.WriteField("avatar_meta", `{"gps_lat":33.6,"device_id":"d-11"}`)
	fw, _ := w.CreateFormFile("upload", "a.png")
	_, _ = fw.Write([]byte{0x89, 0x50})
	w.Close()

	req := RequestView{
		URL:      "https://api.example/upload",
		BodyMIME: w.FormDataContentType(),
		Body:     buf.Bytes(),
	}
	got := keysBySource(Extract(req, DefaultOptions()), SourceBody)
	for _, want := range []string{"username", "avatar_meta", "upload", "gps_lat", "device_id"} {
		if !got[want] {
			t.Errorf("multipart key %q missing (got %v)", want, got)
		}
	}
	// Flat mode skips the embedded JSON.
	flat := keysBySource(Extract(req, Options{FlatOnly: true, MaxDepth: 8}), SourceBody)
	if flat["gps_lat"] {
		t.Error("flat mode must not recurse into multipart JSON values")
	}
	// Corrupt boundary: no keys, no crash.
	bad := RequestView{URL: "https://x/", BodyMIME: "multipart/form-data", Body: buf.Bytes()}
	if n := len(keysBySource(Extract(bad, DefaultOptions()), SourceBody)); n != 0 {
		t.Errorf("boundary-less multipart extracted %d keys", n)
	}
}
