// Package extract harvests raw data types from outgoing requests. Following
// the DiffAudit methodology, requests are converted to JSON-structured data
// and the key/value pairs are mined recursively: keys become the raw data
// types fed to the classifier, while destinations come from the request
// host. Sources mined: URL query strings, request headers, cookies, JSON
// bodies (including JSON nested inside string values), and
// form-urlencoded bodies.
package extract

import (
	"bytes"
	"encoding/json"
	"io"
	mimepkg "mime"
	"mime/multipart"
	"net/url"
	"sort"
	"strings"
)

// Source identifies where in the request a key/value pair was found.
type Source int

// Extraction sources.
const (
	SourceQuery Source = iota
	SourceHeader
	SourceCookie
	SourceBody
)

// String names the source.
func (s Source) String() string {
	switch s {
	case SourceQuery:
		return "query"
	case SourceHeader:
		return "header"
	case SourceCookie:
		return "cookie"
	case SourceBody:
		return "body"
	default:
		return "unknown"
	}
}

// KV is one harvested key/value pair.
type KV struct {
	// Key is the raw data type string as it appeared on the wire
	// ("user_id", "IsOptOutEmailShown", ...).
	Key string
	// Value is a sample value (truncated), kept for manual validation.
	Value string
	// Path is the dotted path for nested keys ("device.os.version").
	Path string
	// Source records which part of the request carried the pair.
	Source Source
}

// Options tunes extraction.
type Options struct {
	// MaxDepth bounds recursion into nested JSON (default 8).
	MaxDepth int
	// FlatOnly disables recursion into nested objects and string-embedded
	// JSON; only top-level keys are harvested. Ablation baseline for
	// BenchmarkAblationExtractDepth.
	FlatOnly bool
	// SkipStandardHeaders drops ubiquitous transport headers that carry no
	// payload semantics (Content-Length, Connection, ...).
	SkipStandardHeaders bool
}

// DefaultOptions returns the pipeline defaults.
func DefaultOptions() Options {
	return Options{MaxDepth: 8, SkipStandardHeaders: true}
}

// standardHeaders are dropped under SkipStandardHeaders. Host and Referer
// stay: the paper's ontology classifies them (network connection info).
var standardHeaders = map[string]bool{
	"content-length": true, "connection": true, "accept-encoding": true,
	"transfer-encoding": true, "upgrade-insecure-requests": true,
	"cache-control": true, "pragma": true, "te": true,
}

// RequestView is the request shape the extractor consumes; both the HAR path
// and the PCAP path produce it.
type RequestView struct {
	Method  string
	URL     string
	Headers []KVPair
	Cookies []KVPair
	// BodyMIME is the Content-Type; bodies are parsed as JSON or
	// form-urlencoded accordingly (JSON is also sniffed).
	BodyMIME string
	Body     []byte
}

// KVPair is a plain name/value pair.
type KVPair struct{ Name, Value string }

// Extract mines all key/value pairs from a request.
func Extract(req RequestView, opts Options) []KV {
	if opts.MaxDepth <= 0 {
		opts.MaxDepth = 8
	}
	var out []KV

	// URL query string.
	if i := strings.IndexByte(req.URL, '?'); i >= 0 {
		q := req.URL[i+1:]
		if j := strings.IndexByte(q, '#'); j >= 0 {
			q = q[:j]
		}
		out = append(out, extractQuery(q, opts)...)
	}

	// Headers.
	for _, h := range req.Headers {
		name := strings.ToLower(strings.TrimSpace(h.Name))
		if name == "" || strings.HasPrefix(name, ":") {
			continue
		}
		if name == "cookie" || name == "set-cookie" {
			continue // handled via Cookies
		}
		if opts.SkipStandardHeaders && standardHeaders[name] {
			continue
		}
		out = append(out, KV{Key: h.Name, Value: clip(h.Value), Path: h.Name, Source: SourceHeader})
	}

	// Cookies.
	for _, c := range req.Cookies {
		if c.Name == "" {
			continue
		}
		out = append(out, KV{Key: c.Name, Value: clip(c.Value), Path: c.Name, Source: SourceCookie})
	}

	// Body.
	out = append(out, extractBody(req.BodyMIME, req.Body, opts)...)
	return out
}

// extractQuery mines a raw query string.
func extractQuery(q string, opts Options) []KV {
	var out []KV
	for _, pair := range strings.Split(q, "&") {
		if pair == "" {
			continue
		}
		name, value, _ := strings.Cut(pair, "=")
		key, err := url.QueryUnescape(name)
		if err != nil || key == "" {
			key = name
		}
		if key == "" {
			continue
		}
		val, err := url.QueryUnescape(value)
		if err != nil {
			val = value
		}
		kv := KV{Key: key, Value: clip(val), Path: key, Source: SourceQuery}
		out = append(out, kv)
		// Query values sometimes embed JSON.
		if !opts.FlatOnly && looksLikeJSON(val) {
			out = append(out, extractJSON([]byte(val), key, SourceQuery, opts, 1)...)
		}
	}
	return out
}

// extractBody mines a request body according to its MIME type.
func extractBody(mime string, body []byte, opts Options) []KV {
	if len(body) == 0 {
		return nil
	}
	mime = strings.ToLower(mime)
	switch {
	case strings.Contains(mime, "json") || looksLikeJSON(string(body)):
		return extractJSON(body, "", SourceBody, opts, 0)
	case strings.Contains(mime, "x-www-form-urlencoded"):
		kvs := extractQuery(string(body), opts)
		for i := range kvs {
			kvs[i].Source = SourceBody
		}
		return kvs
	case strings.Contains(mime, "multipart/form-data"):
		return extractMultipart(mime, body, opts)
	default:
		return nil
	}
}

// extractMultipart mines a multipart/form-data body: each part's form field
// name is a raw data type; text parts that look like JSON recurse.
func extractMultipart(mime string, body []byte, opts Options) []KV {
	_, params, err := textprotoMime(mime)
	if err != nil {
		return nil
	}
	boundary := params["boundary"]
	if boundary == "" {
		return nil
	}
	mr := multipart.NewReader(bytes.NewReader(body), boundary)
	var out []KV
	for {
		part, err := mr.NextPart()
		if err != nil {
			break
		}
		name := part.FormName()
		if name == "" {
			continue
		}
		data, _ := io.ReadAll(io.LimitReader(part, 1<<16))
		val := string(data)
		out = append(out, KV{Key: name, Value: clip(val), Path: name, Source: SourceBody})
		if !opts.FlatOnly && looksLikeJSON(val) {
			out = append(out, extractJSON(data, name, SourceBody, opts, 1)...)
		}
	}
	return out
}

// textprotoMime parses a Content-Type value into type and parameters.
func textprotoMime(v string) (string, map[string]string, error) {
	return mimepkg.ParseMediaType(v)
}

// extractJSON recursively mines a JSON document.
func extractJSON(data []byte, prefix string, src Source, opts Options, depth int) []KV {
	var v interface{}
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.UseNumber()
	if err := dec.Decode(&v); err != nil {
		return nil
	}
	var out []KV
	walkJSON(v, prefix, src, opts, depth, &out)
	return out
}

func walkJSON(v interface{}, path string, src Source, opts Options, depth int, out *[]KV) {
	if depth > opts.MaxDepth {
		return
	}
	switch node := v.(type) {
	case map[string]interface{}:
		keys := make([]string, 0, len(node))
		for k := range node {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			child := joinPath(path, k)
			val := node[k]
			*out = append(*out, KV{Key: k, Value: clip(scalarString(val)), Path: child, Source: src})
			if opts.FlatOnly {
				continue
			}
			switch cv := val.(type) {
			case map[string]interface{}, []interface{}:
				walkJSON(cv, child, src, opts, depth+1, out)
			case string:
				if looksLikeJSON(cv) {
					// JSON escaped inside a string value, common in
					// telemetry payloads.
					walkJSON(parseLoose(cv), child, src, opts, depth+1, out)
				}
			}
		}
	case []interface{}:
		for _, item := range node {
			switch item.(type) {
			case map[string]interface{}, []interface{}:
				walkJSON(item, path, src, opts, depth+1, out)
			}
		}
	}
}

// parseLoose parses a JSON string, returning nil on failure.
func parseLoose(s string) interface{} {
	var v interface{}
	dec := json.NewDecoder(strings.NewReader(s))
	dec.UseNumber()
	if err := dec.Decode(&v); err != nil {
		return nil
	}
	return v
}

func joinPath(prefix, key string) string {
	if prefix == "" {
		return key
	}
	return prefix + "." + key
}

// scalarString renders a scalar sample value; containers render as a marker.
func scalarString(v interface{}) string {
	switch t := v.(type) {
	case nil:
		return "null"
	case string:
		return t
	case bool:
		if t {
			return "true"
		}
		return "false"
	case json.Number:
		return t.String()
	case map[string]interface{}:
		return "{...}"
	case []interface{}:
		return "[...]"
	default:
		return ""
	}
}

// looksLikeJSON reports whether a string plausibly contains a JSON document.
func looksLikeJSON(s string) bool {
	s = strings.TrimSpace(s)
	return len(s) >= 2 &&
		(s[0] == '{' && s[len(s)-1] == '}' || s[0] == '[' && s[len(s)-1] == ']')
}

// clip truncates sample values for storage.
func clip(s string) string {
	const max = 120
	if len(s) > max {
		return s[:max]
	}
	return s
}

// UniqueKeys returns the distinct Key strings across pairs, sorted.
func UniqueKeys(kvs []KV) []string {
	set := make(map[string]bool, len(kvs))
	for _, kv := range kvs {
		set[kv.Key] = true
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
