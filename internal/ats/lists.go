package ats

// The embedded block lists stand in for the Firebog "Big Blocklist
// Collection" the paper uses. They cover every ATS destination the paper
// names explicitly. Like real-world lists, some entries are eSLDs (blocking
// whole families) and some are specific FQDNs (first-party telemetry hosts
// such as metrics.roblox.com, which make a domain a "first party ATS").

// AdvertisingList blocks advertising exchanges, SSPs, DSPs and ad CDNs.
func AdvertisingList() List {
	return List{
		Name: "advertising",
		Entries: []string{
			"doubleclick.net", "googlesyndication.com", "googleadservices.com",
			"googletagservices.com", "admob.com", "amazon-adsystem.com",
			"pubmatic.com", "openx.net", "casalemedia.com",
			"rubiconproject.com", "mathtag.com", "adform.net", "3lift.com",
			"triplelift.com", "sharethrough.com", "media.net", "criteo.com",
			"criteo.net", "adsrvr.org", "smartadserver.com", "lijit.com",
			"33across.com", "gumgum.com", "advertising.com", "adtechus.com",
			"exponential.com", "tribalfusion.com", "adsafeprotected.com",
			"iasds01.com", "adlightning.com", "indexww.com",
			"unityads.unity3d.com", "magnite.com", "adformdsp.net",
			"lemon8-app.com", "lemoninc.com", "onesoon.com",
		},
	}
}

// TrackingList blocks analytics, attribution, CDP and identity-graph hosts.
func TrackingList() List {
	return List{
		Name: "trackers",
		Entries: []string{
			"google-analytics.com", "googletagmanager.com",
			"app-measurement.com", "crashlytics.com", "appsflyer.com",
			"appsflyersdk.com", "adjust.com", "adjust.io", "branch.io",
			"app.link", "braze.com", "appboy.com", "braze.eu", "segment.com",
			"segment.io", "mixpanel.com", "mxpnl.com", "amplitude.com",
			"hotjar.com", "hotjar.io", "pendo.io", "clicktale.net",
			"scorecardresearch.com", "imrworldwide.com", "demdex.net",
			"omtrdc.net", "everesttech.net", "2o7.net", "tapad.com",
			"rlcdn.com", "id5-sync.com", "crwdcntrl.net", "agkn.com",
			"snowplowanalytics.com", "snplow.net", "sentry.io",
			"sentry-cdn.com", "newrelic.com", "nr-data.net", "profitwell.com",
			"apptimize.com", "evidon.com", "betrad.com", "facebook.net",
			"sc-static.net", "onetrust.com", "cookielaw.org",
		},
	}
}

// TelemetryList blocks first-party telemetry endpoints: specific FQDNs that
// turn a first-party destination into a "first party ATS" in the paper's
// terminology (e.g., metrics.roblox.com, browser.events.data.microsoft.com).
func TelemetryList() List {
	return List{
		Name: "telemetry",
		Entries: []string{
			"metrics.roblox.com", "ephemeralcounters.api.roblox.com",
			"browser.events.data.microsoft.com", "clarity.ms",
			"vortex.data.microsoft.com", "telemetry.minecraft.net",
			"mccollect.minecraft.net",
			"analytics.tiktok.com", "mon.tiktokv.com", "mon.byteoversea.com",
			"log.byteoversea.com", "events.redirect.tiktokv.com",
			// Google first-party telemetry FQDNs used by YouTube/YouTube Kids.
			"jnn-pa.googleapis.com", "s.youtube.com", "log.youtube.com",
		},
	}
}
