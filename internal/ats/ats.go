// Package ats decides whether a destination domain is an advertising and
// tracking service (ATS), mirroring the block-list step of the DiffAudit
// paper ("if any of the block lists results in a block decision for a
// particular domain, we label that domain as an ATS"). Decisions are made on
// the fully qualified domain name: an entry blocks the exact name and, like
// Pi-hole style lists, every subdomain of it.
package ats

import (
	"sort"
	"strings"
	"sync"
)

// List is one named block list (e.g., one of the Firebog collection lists
// the paper uses).
type List struct {
	// Name identifies the list in decisions ("ads", "trackers", ...).
	Name string
	// Entries are blocked domains; an entry blocks itself and subdomains.
	Entries []string
}

// Decision reports why a domain was (or was not) blocked.
type Decision struct {
	// Blocked is the overall verdict across all lists.
	Blocked bool
	// Lists names every list with a matching entry.
	Lists []string
	// Entry is the most specific matching entry across lists.
	Entry string
}

// Engine evaluates block decisions across a set of lists.
type Engine struct {
	mu sync.RWMutex
	// entries maps a blocked domain to the list names containing it.
	entries map[string][]string
	names   []string
}

// NewEngine builds an engine from block lists. With no arguments the
// engine starts empty; see Default for the embedded lists.
func NewEngine(lists ...List) *Engine {
	e := &Engine{entries: make(map[string][]string, 512)}
	for _, l := range lists {
		e.Add(l)
	}
	return e
}

// Add merges a list into the engine.
func (e *Engine) Add(l List) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.names = append(e.names, l.Name)
	for _, raw := range l.Entries {
		d := strings.Trim(strings.ToLower(strings.TrimSpace(raw)), ".")
		if d == "" || strings.HasPrefix(d, "#") {
			continue
		}
		e.entries[d] = append(e.entries[d], l.Name)
	}
}

// AddEntries appends entries to a named list, creating it on first use.
func (e *Engine) AddEntries(listName string, entries ...string) {
	e.Add(List{Name: listName, Entries: entries})
}

// Check evaluates the block decision for an FQDN. Matching walks the label
// chain: "sub.ads.example.com" is blocked by entries "sub.ads.example.com",
// "ads.example.com" and "example.com".
func (e *Engine) Check(fqdn string) Decision {
	host := strings.Trim(strings.ToLower(strings.TrimSpace(fqdn)), ".")
	if host == "" {
		return Decision{}
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	var d Decision
	for cand := host; cand != ""; {
		if lists, ok := e.entries[cand]; ok {
			if !d.Blocked {
				d.Blocked = true
				d.Entry = cand // first hit is the most specific
			}
			d.Lists = append(d.Lists, lists...)
		}
		i := strings.IndexByte(cand, '.')
		if i < 0 {
			break
		}
		cand = cand[i+1:]
	}
	if d.Blocked {
		sort.Strings(d.Lists)
		d.Lists = dedup(d.Lists)
	}
	return d
}

// CheckExact evaluates only exact-entry matches, without the subdomain walk.
// This is the ablation baseline for BenchmarkAblationATSMatch.
func (e *Engine) CheckExact(fqdn string) Decision {
	host := strings.Trim(strings.ToLower(strings.TrimSpace(fqdn)), ".")
	e.mu.RLock()
	defer e.mu.RUnlock()
	if lists, ok := e.entries[host]; ok {
		return Decision{Blocked: true, Entry: host, Lists: dedup(append([]string(nil), lists...))}
	}
	return Decision{}
}

// IsATS is shorthand for Check(fqdn).Blocked.
func (e *Engine) IsATS(fqdn string) bool { return e.Check(fqdn).Blocked }

// Size returns the number of distinct blocked domains.
func (e *Engine) Size() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.entries)
}

// ListNames returns the names of all merged lists in insertion order.
func (e *Engine) ListNames() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return append([]string(nil), e.names...)
}

func dedup(sorted []string) []string {
	out := sorted[:0]
	for i, s := range sorted {
		if i == 0 || sorted[i-1] != s {
			out = append(out, s)
		}
	}
	return out
}

var (
	defaultOnce   sync.Once
	defaultEngine *Engine
)

// Default returns the shared engine loaded with the embedded lists
// (advertising, tracking, and first-party telemetry). The synthesizer
// registers its procedurally generated tracker domains here so generator
// and auditor consult the same lists, as in the paper.
func Default() *Engine {
	defaultOnce.Do(func() {
		defaultEngine = NewEngine(AdvertisingList(), TrackingList(), TelemetryList())
	})
	return defaultEngine
}

// ParseHostsList parses a block list in hosts-file format, the format the
// Firebog collection distributes ("0.0.0.0 ads.example.com" per line, with
// comments), plus bare-domain lines.
func ParseHostsList(name string, data []byte) List {
	l := List{Name: name}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "!") {
			continue
		}
		fields := strings.Fields(line)
		domain := fields[0]
		// Hosts-file form: "<ip> <domain> [aliases...]".
		if len(fields) >= 2 && (domain == "0.0.0.0" || domain == "127.0.0.1" || domain == "::" || domain == "::1") {
			for _, d := range fields[1:] {
				if d == "localhost" || strings.HasPrefix(d, "#") {
					break
				}
				l.Entries = append(l.Entries, d)
			}
			continue
		}
		if strings.ContainsAny(domain, "/:") {
			continue // URLs or adblock syntax: out of scope
		}
		l.Entries = append(l.Entries, domain)
	}
	return l
}
