package ats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestDefaultBlocksPaperATS(t *testing.T) {
	e := Default()
	blocked := []string{
		"google-analytics.com", "www.google-analytics.com",
		"doubleclick.net", "stats.g.doubleclick.net",
		"amazon-adsystem.com", "aax.amazon-adsystem.com",
		"metrics.roblox.com", "browser.events.data.microsoft.com",
		"clarity.ms", "www.clarity.ms", "pubmatic.com", "ads.pubmatic.com",
		"mathtag.com", "pixel.mathtag.com", "appsflyer.com", "adjust.com",
		"sentry.io", "o123.ingest.sentry.io", "sharethrough.com",
	}
	for _, d := range blocked {
		if !e.IsATS(d) {
			t.Errorf("IsATS(%q) = false, want blocked", d)
		}
	}
	notBlocked := []string{
		"roblox.com", "www.roblox.com", "duolingo.com", "quizlet.com",
		"minecraft.net", "tiktok.com", "youtube.com", "googleapis.com",
		"d1.cloudfront.net", "vimeocdn.com", "akamaized.net",
	}
	for _, d := range notBlocked {
		if e.IsATS(d) {
			t.Errorf("IsATS(%q) = true, want not blocked (decision %+v)", d, e.Check(d))
		}
	}
}

func TestSubdomainWalkVsExact(t *testing.T) {
	e := NewEngine(List{Name: "l", Entries: []string{"ads.example.com"}})
	if !e.Check("tr.ads.example.com").Blocked {
		t.Error("subdomain of entry should be blocked")
	}
	if e.CheckExact("tr.ads.example.com").Blocked {
		t.Error("exact matcher must not block subdomains")
	}
	if !e.CheckExact("ads.example.com").Blocked {
		t.Error("exact matcher must block the entry itself")
	}
	if e.Check("example.com").Blocked {
		t.Error("parent of entry must not be blocked")
	}
	if e.Check("notads.example.com").Blocked {
		t.Error("sibling must not be blocked")
	}
}

func TestDecisionDetails(t *testing.T) {
	e := NewEngine(
		List{Name: "a", Entries: []string{"example.com"}},
		List{Name: "b", Entries: []string{"ads.example.com", "example.com"}},
	)
	d := e.Check("x.ads.example.com")
	if !d.Blocked {
		t.Fatal("want blocked")
	}
	if d.Entry != "ads.example.com" {
		t.Errorf("Entry = %q, want most specific ads.example.com", d.Entry)
	}
	if len(d.Lists) != 2 || d.Lists[0] != "a" || d.Lists[1] != "b" {
		t.Errorf("Lists = %v, want [a b]", d.Lists)
	}
}

func TestAddEntriesAndSize(t *testing.T) {
	e := NewEngine()
	if e.Size() != 0 {
		t.Fatalf("empty engine size %d", e.Size())
	}
	e.AddEntries("synthetic", "trk1.example", "trk2.example", "trk1.example")
	if e.Size() != 2 {
		t.Errorf("size = %d, want 2 (dedup by domain)", e.Size())
	}
	if !e.IsATS("trk1.example") || !e.IsATS("sub.trk2.example") {
		t.Error("added entries not blocking")
	}
	if got := e.ListNames(); len(got) != 1 || got[0] != "synthetic" {
		t.Errorf("ListNames = %v", got)
	}
}

func TestNormalization(t *testing.T) {
	e := NewEngine(List{Name: "l", Entries: []string{"  ADS.Example.COM. ", "", "# comment"}})
	if !e.IsATS("ads.example.com") {
		t.Error("normalized entry should block")
	}
	if !e.IsATS("ADS.EXAMPLE.COM.") {
		t.Error("normalized query should match")
	}
	if e.Size() != 1 {
		t.Errorf("size = %d, want 1 (blank and comment skipped)", e.Size())
	}
	if e.Check("").Blocked {
		t.Error("empty query must not block")
	}
}

// Property: Check is monotone — if a name is blocked, prefixing labels never
// unblocks it.
func TestBlockedMonotoneUnderSubdomains(t *testing.T) {
	e := NewEngine(List{Name: "l", Entries: []string{"tracker.example", "deep.list.co"}})
	f := func(labels []uint8) bool {
		host := "tracker.example"
		for _, l := range labels {
			host = string(rune('a'+l%26)) + "." + host
		}
		return e.IsATS(host)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: exact matching is a subset of subdomain-walk matching.
func TestExactSubsetOfWalk(t *testing.T) {
	e := Default()
	f := func(a, b uint8) bool {
		hosts := []string{
			"doubleclick.net", "x.doubleclick.net", "roblox.com",
			"metrics.roblox.com", "a.metrics.roblox.com", "example.org",
		}
		h := hosts[int(a)%len(hosts)]
		if b%2 == 0 {
			h = "p" + strings.Repeat("q", int(b%5)) + "." + h
		}
		if e.CheckExact(h).Blocked && !e.Check(h).Blocked {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestParseHostsList(t *testing.T) {
	data := []byte(`# Title: test list
! adblock comment
0.0.0.0 ads.example.com
0.0.0.0 trk.example.net extra.example.org
127.0.0.1 localhost
bare-domain.example
::1 localhost
:: v6blocked.example
https://not-a-domain.example/path
`)
	l := ParseHostsList("firebog-test", data)
	e := NewEngine(l)
	for _, want := range []string{
		"ads.example.com", "trk.example.net", "extra.example.org",
		"bare-domain.example", "v6blocked.example",
	} {
		if !e.IsATS(want) {
			t.Errorf("%s not blocked", want)
		}
	}
	if e.IsATS("localhost") {
		t.Error("localhost must not be blocked")
	}
	if e.IsATS("not-a-domain.example") {
		t.Error("URL line must be skipped")
	}
}
