// Snapshot integrity scrubbing: proactive detection of at-rest
// corruption. FSStore already *tolerates* corruption — a damaged file is
// skipped at Open, and Get re-hashes what it reads — but tolerance is
// reactive: the damage is discovered by whichever request trips over it,
// and until then the store advertises a snapshot it cannot serve. A
// scrub pass walks every listed snapshot, re-verifies the whole chain of
// custody (envelope parse, codec CRC32, SHA-256 content hash against the
// listed metadata), and handles what it finds:
//
//   - Corrupt files are moved to <dir>/quarantine/ — off the serving
//     path but preserved byte-for-byte, because a later build (or a
//     human with a hex editor) may recover what this one cannot, and
//     because deleting evidence of silent corruption is how you never
//     find the bad disk.
//   - If the caller can produce clean bytes for the snapshot's content
//     hash (the server offers re-encoded results from its decoded-
//     snapshot cache), the file is rewritten in place from those bytes
//     and the snapshot keeps serving as if nothing happened.
//   - Otherwise the metadata is dropped: subsequent reads answer 404
//     (the reference no longer resolves) instead of 500.
//
// The "scrub.corrupt" injection point makes the verifier report a file
// corrupt without real disk damage, so chaos tests drive the quarantine
// and repair paths deterministically.
package store

import (
	"fmt"
	"os"
	"path/filepath"

	"diffaudit/internal/faults"
)

// ScrubResult counts what one scrub pass found and did.
type ScrubResult struct {
	// Scanned is how many listed snapshots were verified.
	Scanned int `json:"scanned"`
	// Corrupt is how many failed verification (envelope, CRC, or
	// content hash). Corrupt == Repaired + Quarantined.
	Corrupt int `json:"corrupt"`
	// Repaired is how many corrupt snapshots were rewritten from clean
	// bytes the caller supplied and kept serving.
	Repaired int `json:"repaired"`
	// Quarantined is how many corrupt snapshots were moved aside and
	// dropped from the listing.
	Quarantined int `json:"quarantined"`
}

// Add accumulates another pass's counts (the server's cumulative
// healthz totals).
func (r *ScrubResult) Add(o ScrubResult) {
	r.Scanned += o.Scanned
	r.Corrupt += o.Corrupt
	r.Repaired += o.Repaired
	r.Quarantined += o.Quarantined
}

// Scrubber is implemented by stores that can proactively verify their
// at-rest snapshots. fetch, when non-nil, maps a content hash to clean
// encoded bytes for repair (return false when no clean copy exists).
type Scrubber interface {
	ScrubPass(fetch func(hash string) ([]byte, bool)) ScrubResult
}

// QuarantineDir is where a scrubbed FSStore parks corrupt snapshot
// files.
func (s *FSStore) QuarantineDir() string { return filepath.Join(s.dir, "quarantine") }

// ScrubPass implements Scrubber: one low-priority walk over every listed
// snapshot. File I/O happens outside the store lock — a pass over a
// large store must not stall Puts — and each corrupt file is handled
// under the lock with a re-check, so a concurrent Delete cannot race the
// quarantine into resurrecting metadata.
func (s *FSStore) ScrubPass(fetch func(hash string) ([]byte, bool)) ScrubResult {
	metas, _ := s.List()
	var res ScrubResult
	for _, m := range metas {
		res.Scanned++
		err := s.verifySnapshotFile(m)
		if err == nil {
			continue
		}
		res.Corrupt++
		if s.quarantineAndMaybeRepair(m, fetch) {
			res.Repaired++
		} else {
			res.Quarantined++
		}
	}
	return res
}

// verifySnapshotFile re-verifies one snapshot file end to end: envelope
// parse, envelope metadata against the listed metadata, codec CRC32,
// and the SHA-256 content hash. Any failure — including an unreadable
// file — reports corrupt; the quarantine path tolerates a file that
// turns out to be missing.
func (s *FSStore) verifySnapshotFile(m Meta) error {
	if err := faults.Inject("scrub.corrupt"); err != nil {
		return fmt.Errorf("store: scrub: %w", err)
	}
	stored, data, err := readSnapFile(s.path(m.Seq))
	if err != nil {
		return err
	}
	if stored.Hash != m.Hash {
		return fmt.Errorf("store: scrub: snapshot %d envelope hash %s != listed %s", m.Seq, stored.Hash, m.Hash)
	}
	// CRC32 first (cheap, catches truncation and bit rot inside the codec
	// frame), then the content hash (end-to-end, catches everything else
	// including a consistently re-written wrong snapshot).
	if _, _, err := checkSnapshot(data); err != nil {
		return fmt.Errorf("store: scrub: snapshot %d: %w", m.Seq, err)
	}
	if got := Hash(data); got != m.Hash {
		return fmt.Errorf("store: scrub: snapshot %d content hash %s != listed %s", m.Seq, got, m.Hash)
	}
	return nil
}

// quarantineAndMaybeRepair moves a corrupt snapshot file into the
// quarantine directory and, when clean bytes are available, republishes
// the file in place. Returns true when the snapshot was repaired and
// keeps serving; false when it was quarantined and dropped from the
// listing.
func (s *FSStore) quarantineAndMaybeRepair(m Meta, fetch func(hash string) ([]byte, bool)) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Re-check under the lock: a concurrent Delete may have removed the
	// snapshot while verification ran; there is nothing left to handle.
	live := false
	for _, cur := range s.metas {
		if cur.Seq == m.Seq && cur.Hash == m.Hash {
			live = true
			break
		}
	}
	if !live {
		return false
	}

	// Park the corrupt bytes. A rename preserves them exactly; failure to
	// quarantine (quarantine dir unwritable) must not block dropping the
	// metadata — serving 404 beats serving corruption either way.
	if err := os.MkdirAll(s.QuarantineDir(), 0o755); err == nil {
		dest := filepath.Join(s.QuarantineDir(), fmt.Sprintf("%012d.snap", m.Seq))
		if _, err := os.Stat(dest); err == nil {
			// A previous pass already parked this sequence; keep the first
			// evidence and make room for the fresh copy.
			dest = filepath.Join(s.QuarantineDir(), fmt.Sprintf("%012d.snap.%d", m.Seq, os.Getpid()))
		}
		os.Rename(s.path(m.Seq), dest)
	}
	os.Remove(s.path(m.Seq)) // if the rename failed, do not leave corruption serveable

	if fetch != nil {
		if data, ok := fetch(m.Hash); ok && Hash(data) == m.Hash {
			if err := publishSnapFile(s.dir, s.path(m.Seq), m, data); err == nil {
				return true // metadata stays; the snapshot never stopped serving
			}
		}
	}

	// No clean copy: drop the listing so reads 404 instead of 500.
	for i, cur := range s.metas {
		if cur.Seq == m.Seq {
			s.metas = append(s.metas[:i], s.metas[i+1:]...)
			break
		}
	}
	return false
}
