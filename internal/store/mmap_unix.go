//go:build unix

package store

import (
	"fmt"
	"os"
	"syscall"
)

// mapFile maps a snapshot file read-only. The returned closer unmaps it;
// the bytes are valid only until then. Snapshot files are immutable once
// published (FSStore links them into place and never rewrites), so a
// shared read-only mapping is safe for the file's lifetime; deleting the
// file under a live mapping is also safe — the pages stay valid until the
// unmap. Empty files map to an empty slice (mmap of length 0 is an error).
func mapFile(path string) ([]byte, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := fi.Size()
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	if size != int64(int(size)) {
		return nil, nil, fmt.Errorf("snapshot file %s too large to map (%d bytes)", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		// Some filesystems refuse mmap; fall back to a plain read.
		raw, rerr := os.ReadFile(path)
		if rerr != nil {
			return nil, nil, rerr
		}
		return raw, func() error { return nil }, nil
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
