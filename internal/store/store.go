// Package store persists audit results as first-class, addressable
// snapshots — the durable substrate the audit server's longitudinal
// features build on. A snapshot is one core.ServiceResult serialized with
// the versioned codec (codec.go), keyed by its content hash (SHA-256 over
// the canonical encoding) plus a monotonic sequence number assigned at Put
// time. Two backends implement the Store interface:
//
//   - MemStore keeps snapshots in process memory — the ephemeral behavior
//     the server had before snapshots existed, now behind the same
//     interface, useful for tests and single-run tooling.
//   - FSStore appends snapshots as individual files under a data
//     directory. Writes are crash-safe (write to a temp file in the same
//     directory, fsync, then rename), and opening the store rescans the
//     directory so a restarted process serves everything the previous one
//     stored.
//
// References are user-facing: Get and Delete resolve a snapshot by decimal
// sequence number, full content hash, unique hash prefix (≥ 6 hex chars),
// or the job ID recorded at Put time.
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"diffaudit/internal/core"
	"diffaudit/internal/faults"
	"diffaudit/internal/wire"
)

// Meta describes one stored snapshot.
type Meta struct {
	// Seq is the store-local monotonic sequence number, assigned at Put
	// time — later snapshots always compare greater, which is what makes
	// "diff the service against itself over time" well ordered.
	Seq uint64 `json:"seq"`
	// Hash is the content hash (hex SHA-256 of the canonical encoding).
	Hash string `json:"hash"`
	// Service is the audited service's name.
	Service string `json:"service"`
	// JobID records which server job produced the snapshot ("" for
	// snapshots stored outside the server).
	JobID string `json:"job_id,omitempty"`
	// CreatedAt is the Put time (UTC).
	CreatedAt time.Time `json:"created_at"`
	// Bytes is the encoded snapshot size.
	Bytes int `json:"bytes"`
}

// Store is a snapshot store. Implementations are safe for concurrent use.
type Store interface {
	// Put serializes and stores a result, returning its metadata. jobID
	// may be "" when the snapshot is not tied to a server job.
	Put(jobID string, r *core.ServiceResult) (Meta, error)
	// Get resolves a reference (sequence number, hash, unique hash
	// prefix, or job ID) and decodes the snapshot.
	Get(ref string) (*core.ServiceResult, Meta, error)
	// List returns all snapshot metadata in ascending sequence order.
	List() ([]Meta, error)
	// Delete removes the snapshot a reference resolves to.
	Delete(ref string) error
}

// ErrUnresolved tags reference-resolution failures — no match, ambiguous
// prefix, empty reference — where the caller's reference is wrong, as
// distinct from storage failures (I/O errors, corruption) where the
// snapshot exists but cannot be served. HTTP layers map the former to
// 404 and the latter to 500.
var ErrUnresolved = errors.New("unresolved snapshot reference")

// Resolve finds the snapshot a user-facing reference denotes among metas:
// a decimal number matches the sequence, otherwise the reference matches a
// job ID, a full hash, or a unique hash prefix of at least 6 characters.
// When several snapshots share a hash (identical content stored twice),
// the newest wins.
func Resolve(metas []Meta, ref string) (Meta, error) {
	ref = strings.TrimSpace(ref)
	if ref == "" {
		return Meta{}, fmt.Errorf("store: %w: empty reference", ErrUnresolved)
	}
	if seq, err := strconv.ParseUint(ref, 10, 64); err == nil {
		for _, m := range metas {
			if m.Seq == seq {
				return m, nil
			}
		}
		// No such sequence — fall through: an all-digit reference can
		// still be a valid hash prefix (≈6% of hex hashes open with six
		// decimal digits) or an all-digit job ID.
	}
	var jobMatches, hashMatches []Meta
	for _, m := range metas {
		switch {
		case m.JobID != "" && m.JobID == ref:
			jobMatches = append(jobMatches, m)
		case m.Hash == ref:
			hashMatches = append(hashMatches, m)
		case len(ref) >= 6 && strings.HasPrefix(m.Hash, ref):
			hashMatches = append(hashMatches, m)
		}
	}
	// A job ID resolves to its latest snapshot (a re-run job overwrites
	// nothing; the newer audit wins), and takes precedence over a hash
	// prefix that happens to collide with it.
	if len(jobMatches) > 0 {
		best := jobMatches[0]
		for _, m := range jobMatches {
			if m.Seq > best.Seq {
				best = m
			}
		}
		return best, nil
	}
	if len(hashMatches) == 0 {
		return Meta{}, fmt.Errorf("store: %w: no snapshot matches %q", ErrUnresolved, ref)
	}
	// Identical content stored twice shares a hash and resolves to the
	// newest copy; a prefix spanning different contents is ambiguous.
	best := hashMatches[0]
	distinct := map[string]bool{}
	for _, m := range hashMatches {
		distinct[m.Hash] = true
		if m.Seq > best.Seq {
			best = m
		}
	}
	if len(distinct) > 1 {
		return Meta{}, fmt.Errorf("store: %w: %q is ambiguous (%d snapshots match)", ErrUnresolved, ref, len(hashMatches))
	}
	return best, nil
}

// storeShards is the number of payload shards in MemStore. Snapshots land
// in a shard by FNV-1a over their content hash, so concurrent operations
// on different snapshots almost never share a lock. 32 shards comfortably
// exceeds the worker/reader parallelism the server runs (GOMAXPROCS-ish)
// while keeping the fixed footprint trivial; the map in each shard stays
// small enough that per-shard operations are O(1) lookups.
const storeShards = 32

const (
	fnvOffset32 = 2166136261
	fnvPrime32  = 16777619
)

// shardOf maps a content hash to its payload shard index.
func shardOf(hash string) uint32 {
	h := uint32(fnvOffset32)
	for i := 0; i < len(hash); i++ {
		h ^= uint32(hash[i])
		h *= fnvPrime32
	}
	return h % storeShards
}

// insertMeta inserts m into a seq-ascending meta list. Concurrent Puts
// reserve sequence numbers in order but can finish out of order, so a
// plain append is not enough to keep List sorted.
func insertMeta(metas []Meta, m Meta) []Meta {
	i := sort.Search(len(metas), func(i int) bool { return metas[i].Seq >= m.Seq })
	metas = append(metas, Meta{})
	copy(metas[i+1:], metas[i:])
	metas[i] = m
	return metas
}

// MemStore keeps snapshots in process memory: the full snapshot API with
// process-lifetime durability. A server only uses it when configured
// (ServerConfig.Store) — the server's default remains no store at all,
// with memory-only result semantics. Memory grows with every Put;
// long-lived servers that need durability or a bound should use FSStore.
//
// Concurrency layout: the meta index (seq assignment + the seq-ordered
// listing) lives under one mutex whose critical sections are a few loads
// and stores — encoding, hashing, and decoding never run under it. The
// payload bytes live in FNV(content-hash)-sharded maps so readers of
// different snapshots fetch their bytes without sharing a lock.
type MemStore struct {
	mu      sync.Mutex // guards metas + nextSeq; short critical sections only
	metas   []Meta     // ascending seq
	nextSeq uint64

	shards [storeShards]memShard
}

type memShard struct {
	mu   sync.Mutex
	data map[uint64][]byte // seq → canonical encoding
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{nextSeq: 1}
}

// Put implements Store. The encode and the SHA-256 over it — the
// expensive part of a Put — run before any lock is taken; the index lock
// covers only the sequence reservation and the sorted meta insert.
func (s *MemStore) Put(jobID string, r *core.ServiceResult) (Meta, error) {
	data := EncodeResult(r)
	hash := Hash(data)
	s.mu.Lock()
	seq := s.nextSeq
	s.nextSeq++
	s.mu.Unlock()
	meta := Meta{
		Seq:       seq,
		Hash:      hash,
		Service:   r.Identity.Name,
		JobID:     jobID,
		CreatedAt: time.Now().UTC(),
		Bytes:     len(data),
	}
	sh := &s.shards[shardOf(hash)]
	sh.mu.Lock()
	if sh.data == nil {
		sh.data = make(map[uint64][]byte)
	}
	sh.data[seq] = data
	sh.mu.Unlock()
	// Publish the meta last: a reference never resolves to a snapshot
	// whose bytes are not yet in place.
	s.mu.Lock()
	s.metas = insertMeta(s.metas, meta)
	s.mu.Unlock()
	return meta, nil
}

// fetch returns the stored bytes for a resolved meta. The bytes are
// immutable after Put, so the reference is shared, not copied. A false
// return means a concurrent Delete won the race after resolution.
func (s *MemStore) fetch(meta Meta) ([]byte, bool) {
	sh := &s.shards[shardOf(meta.Hash)]
	sh.mu.Lock()
	data, ok := sh.data[meta.Seq]
	sh.mu.Unlock()
	return data, ok
}

// Get implements Store. Decoding runs outside every lock.
func (s *MemStore) Get(ref string) (*core.ServiceResult, Meta, error) {
	metas, _ := s.List()
	meta, err := Resolve(metas, ref)
	if err != nil {
		return nil, Meta{}, err
	}
	data, ok := s.fetch(meta)
	if !ok {
		// Deleted between resolution and fetch: the reference no longer
		// denotes anything, which is a 404, not a 500.
		return nil, Meta{}, fmt.Errorf("store: %w: snapshot %d deleted", ErrUnresolved, meta.Seq)
	}
	res, err := DecodeResult(data)
	return res, meta, err
}

// List implements Store.
func (s *MemStore) List() ([]Meta, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Meta(nil), s.metas...), nil
}

// Delete implements Store. The meta is dropped first so no new reference
// resolves to the snapshot, then the payload is released from its shard.
func (s *MemStore) Delete(ref string) error {
	s.mu.Lock()
	meta, err := Resolve(s.metas, ref)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	for i, m := range s.metas {
		if m.Seq == meta.Seq {
			s.metas = append(s.metas[:i], s.metas[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
	sh := &s.shards[shardOf(meta.Hash)]
	sh.mu.Lock()
	delete(sh.data, meta.Seq)
	sh.mu.Unlock()
	return nil
}

// FSStore persists snapshots as append-only files under a directory. One
// snapshot is one file, <seq>.snap, holding a small envelope (JSON metadata)
// followed by the codec bytes. Files are written to a temp name in the same
// directory and renamed into place, so a crash mid-write never leaves a
// half-visible snapshot — at worst a .tmp-* orphan, which Open removes.
//
// Concurrency layout: like MemStore, the meta index lives under one
// mutex with short critical sections. File I/O — the temp write, the
// fsync, the hard-link publish, the dirsync, the unlink — runs entirely
// outside that lock, so concurrent Puts overlap their fsyncs instead of
// convoying behind a single global mutex, and readers never wait on a
// writer's disk. Only the cold scrub-repair path still does I/O under
// the lock (quarantine must be atomic against Delete).
type FSStore struct {
	dir string

	mu      sync.Mutex // guards metas + nextSeq; hot-path file I/O never runs under it
	metas   []Meta     // ascending seq
	nextSeq uint64
}

// envelope magic and version for the FSStore file framing (distinct from
// the snapshot codec version: the framing can evolve independently).
const (
	fileMagic   = "DASF"
	fileVersion = 1
)

// OpenFSStore opens (creating if needed) a snapshot directory and rescans
// it, so snapshots stored by previous processes are served again.
// Unreadable or corrupted files are skipped rather than failing the open:
// a damaged snapshot must not take down the store that holds the healthy
// ones.
func OpenFSStore(dir string) (*FSStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: data directory required")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &FSStore{dir: dir, nextSeq: 1}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, ".tmp-") {
			// Orphan from a crashed write; never renamed, never visible.
			os.Remove(filepath.Join(dir, name))
			continue
		}
		if e.IsDir() || !strings.HasSuffix(name, ".snap") {
			continue
		}
		// Every .snap file claims the sequence its name encodes, even when
		// it cannot be read (corrupt, or written by a newer build): a
		// later Put must never rename over it and destroy bytes a better
		// decoder could still recover.
		if n, err := strconv.ParseUint(strings.TrimSuffix(name, ".snap"), 10, 64); err == nil && n >= s.nextSeq {
			s.nextSeq = n + 1
		}
		meta, data, err := readSnapFile(filepath.Join(dir, name))
		if err != nil || Hash(data) != meta.Hash {
			continue
		}
		s.metas = append(s.metas, meta)
		if meta.Seq >= s.nextSeq {
			s.nextSeq = meta.Seq + 1
		}
	}
	sort.Slice(s.metas, func(i, j int) bool { return s.metas[i].Seq < s.metas[j].Seq })
	return s, nil
}

// Dir returns the store's data directory.
func (s *FSStore) Dir() string { return s.dir }

// path returns the file backing a sequence number.
func (s *FSStore) path(seq uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("%012d.snap", seq))
}

// Put implements Store. Publication is exclusive (hard link, not rename):
// if another handle or process over the same directory already claimed
// the sequence, this writer skips past it instead of overwriting — two
// concurrent writers never destroy each other's snapshots. A concurrent
// writer's own snapshots become visible to this handle on the next Open.
func (s *FSStore) Put(jobID string, r *core.ServiceResult) (Meta, error) {
	data := EncodeResult(r)
	hash := Hash(data)
	for {
		// Reserve a sequence number under a short critical section, then
		// do every byte of file I/O with no lock held: concurrent Puts
		// write and fsync in parallel, each against its own reserved file.
		s.mu.Lock()
		seq := s.nextSeq
		s.nextSeq++
		s.mu.Unlock()
		meta := Meta{
			Seq:       seq,
			Hash:      hash,
			Service:   r.Identity.Name,
			JobID:     jobID,
			CreatedAt: time.Now().UTC(),
			Bytes:     len(data),
		}
		err := publishSnapFile(s.dir, s.path(meta.Seq), meta, data)
		if os.IsExist(err) {
			// Sequence taken by a foreign writer over the same directory;
			// reserve the next one and retry.
			continue
		}
		if err != nil {
			return Meta{}, err
		}
		s.mu.Lock()
		s.metas = insertMeta(s.metas, meta)
		s.mu.Unlock()
		return meta, nil
	}
}

// Get implements Store.
func (s *FSStore) Get(ref string) (*core.ServiceResult, Meta, error) {
	metas, _ := s.List()
	meta, err := Resolve(metas, ref)
	if err != nil {
		return nil, Meta{}, err
	}
	stored, data, err := readSnapFile(s.path(meta.Seq))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			// Deleted between resolution and the read: a stale reference,
			// not a storage failure.
			return nil, Meta{}, fmt.Errorf("store: %w: snapshot %d deleted", ErrUnresolved, meta.Seq)
		}
		return nil, Meta{}, err
	}
	if stored.Hash != meta.Hash {
		return nil, Meta{}, fmt.Errorf("store: snapshot %d changed on disk (hash %s != %s)", meta.Seq, stored.Hash, meta.Hash)
	}
	res, err := DecodeResult(data)
	if err != nil {
		return nil, Meta{}, fmt.Errorf("store: snapshot %d: %w", meta.Seq, err)
	}
	return res, meta, nil
}

// List implements Store.
func (s *FSStore) List() ([]Meta, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Meta(nil), s.metas...), nil
}

// Delete implements Store. The meta is dropped under the lock first —
// no new reference resolves to the snapshot — and the file is unlinked
// with no lock held. An open View keeps serving: it reads mapped (or
// copied) bytes whose inode survives the unlink.
func (s *FSStore) Delete(ref string) error {
	s.mu.Lock()
	meta, err := Resolve(s.metas, ref)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	for i, m := range s.metas {
		if m.Seq == meta.Seq {
			s.metas = append(s.metas[:i], s.metas[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
	if err := os.Remove(s.path(meta.Seq)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// syncDir flushes a directory's entry metadata so a just-published link
// or rename survives power loss, not only process crash. Open failure is
// real (the directory vanished); a failing Sync degrades silently — the
// snapshot bytes themselves are already fsynced, and some filesystems
// cannot sync a directory handle at all.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	d.Sync()
	d.Close()
	return nil
}

// writeTemp writes data durably to a fresh .tmp-* file in dir (write,
// fsync, close) and returns its path. The caller publishes it via link or
// rename and removes it on failure. The "store.write" injection point
// models the write failing before any byte lands — the transient-I/O case
// the server's retry loop exists for.
func writeTemp(dir string, data []byte) (string, error) {
	if err := faults.Inject("store.write"); err != nil {
		return "", fmt.Errorf("store: %w", err)
	}
	f, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return "", fmt.Errorf("store: %w", err)
	}
	_, err = f.Write(data)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(f.Name())
		return "", fmt.Errorf("store: %w", err)
	}
	return f.Name(), nil
}

// publishSnapFile writes one snapshot file crash-safely and exclusively:
// temp file in the same directory, fsync, then a hard link to the final
// name — which fails with os.IsExist (passed through un-wrapped) when the
// name is already taken, instead of overwriting it as a rename would.
func publishSnapFile(dir, path string, meta Meta, data []byte) error {
	metaJSON, err := json.Marshal(meta)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	w := &wire.Writer{}
	var hdr [6]byte
	copy(hdr[:], fileMagic)
	hdr[4] = fileVersion
	hdr[5] = 0
	w.Raw(hdr[:])
	w.Int(len(metaJSON))
	w.Raw(metaJSON)
	w.Raw(data)

	tmp, err := writeTemp(dir, w.Bytes())
	if err != nil {
		return err
	}
	err = os.Link(tmp, path)
	os.Remove(tmp)
	if err != nil {
		if os.IsExist(err) {
			return err
		}
		return fmt.Errorf("store: %w", err)
	}
	return syncDir(dir)
}

// readSnapFile parses one snapshot file's envelope, returning the metadata
// and the codec bytes.
func readSnapFile(path string) (Meta, []byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Meta{}, nil, fmt.Errorf("store: %w", err)
	}
	return parseSnapEnvelope(path, raw)
}

// parseSnapEnvelope parses a snapshot file's envelope from bytes already
// in hand (read or mapped). The returned codec bytes alias raw.
func parseSnapEnvelope(path string, raw []byte) (Meta, []byte, error) {
	if len(raw) < 6 || string(raw[:4]) != fileMagic {
		return Meta{}, nil, fmt.Errorf("store: %s: not a snapshot file", filepath.Base(path))
	}
	if raw[4] != fileVersion {
		return Meta{}, nil, fmt.Errorf("store: %s: file version %d not supported (this build reads %d)", filepath.Base(path), raw[4], fileVersion)
	}
	r := wire.NewReader(raw[6:])
	n := r.Count(1)
	if r.Err() != nil || n > r.Remaining() {
		return Meta{}, nil, fmt.Errorf("store: %s: corrupt envelope", filepath.Base(path))
	}
	rest := raw[len(raw)-r.Remaining():]
	metaJSON, data := rest[:n], rest[n:]
	var meta Meta
	if err := json.Unmarshal(metaJSON, &meta); err != nil {
		return Meta{}, nil, fmt.Errorf("store: %s: envelope metadata: %w", filepath.Base(path), err)
	}
	return meta, data, nil
}

// SaveFile writes one result as a standalone snapshot file (the raw codec
// encoding, no envelope — the `diffaudit diff` CLI reads these directly).
// The write is crash-safe like FSStore's; unlike a store sequence file,
// the caller named the target, so an existing file is replaced.
func SaveFile(path string, r *core.ServiceResult) error {
	dir := filepath.Dir(path)
	tmp, err := writeTemp(dir, EncodeResult(r))
	if err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	return syncDir(dir)
}

// LoadFile reads a standalone snapshot file written by SaveFile.
func LoadFile(path string) (*core.ServiceResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	res, err := DecodeResult(data)
	if err != nil {
		return nil, fmt.Errorf("store: %s: %w", filepath.Base(path), err)
	}
	return res, nil
}
