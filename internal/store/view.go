package store

import (
	"fmt"
	"os"
	"sync"

	"diffaudit/internal/core"
	"diffaudit/internal/flows"
	"diffaudit/internal/linkability"
	"diffaudit/internal/ontology"
	"diffaudit/internal/wire"
)

// SnapshotView is a lazy handle over one encoded snapshot: the envelope
// (magic, version, CRC) is validated exactly once when the view opens, and
// everything else — symbol tables, persona records, per-persona flow sets —
// materializes on demand. For version-2 (sectioned) snapshots a view can
// materialize a subset of personas without ever touching the flow bytes of
// the others, which is what lets a filtered /v1/diff skip most of the
// decode work. Version-1 snapshots open fine but materialize all-or-
// nothing (their payload is one sequential stream).
//
// The backing bytes may be an mmap of the store file (FSStore.View on
// platforms with mmap support). Materialized results never alias those
// bytes — every string and symbol is copied or re-interned during decode —
// so results outlive the view, but the view itself must not be used after
// Close. Views are safe for concurrent use.
type SnapshotView struct {
	meta    Meta
	version uint16
	secs    *snapSections // nil for version-1 snapshots
	payload []byte        // version-1 payload (nil for v2/v3)

	mu     sync.Mutex
	closer func() error
	closed bool

	// Decode-state cache, built once on first use (under mu) and shared by
	// every later materialization: repeated PartialResult calls used to
	// re-register personas and re-intern the whole symbol table per call.
	// All three are immutable once built — the registry and intern tables
	// are append-only, so resolved IDs never go stale.
	personas []flows.Persona    // registered personas, section order
	dec      *flows.SetDecoder  // re-interned symbol tables
	scan     *flows.TableScan   // column-selective table view (v3 only)
	cols     []flows.SetColumns // split flow columns, persona order (v3 only)
}

// NewSnapshotView validates a snapshot's envelope and returns a lazy view.
// closer, if non-nil, releases the backing bytes (e.g. munmap) and runs
// exactly once, on Close.
func NewSnapshotView(data []byte, meta Meta, closer func() error) (*SnapshotView, error) {
	version, payload, err := checkSnapshot(data)
	if err != nil {
		if closer != nil {
			closer()
		}
		return nil, err
	}
	v := &SnapshotView{meta: meta, version: version, closer: closer}
	if version == 1 {
		v.payload = payload
		return v, nil
	}
	secs, err := splitSections(version, payload)
	if err != nil {
		if closer != nil {
			closer()
		}
		return nil, err
	}
	v.secs = secs
	return v, nil
}

// Meta returns the stored metadata the view was opened with.
func (v *SnapshotView) Meta() Meta { return v.meta }

// Version returns the snapshot codec version of the backing bytes.
func (v *SnapshotView) Version() uint16 { return v.version }

// Close releases the backing bytes. The view (and any zero-copy section
// slices, but not materialized results) is unusable afterwards.
func (v *SnapshotView) Close() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.closed {
		return nil
	}
	v.closed = true
	v.secs = nil
	v.payload = nil
	v.scan = nil
	v.cols = nil
	if v.closer != nil {
		return v.closer()
	}
	return nil
}

// index builds (once) the decode state every sectioned materialization
// shares: the registered persona list and the re-interned symbol decoder.
// Callers hold v.mu.
func (v *SnapshotView) index() error {
	if v.personas != nil && v.dec != nil {
		return nil
	}
	personas, err := decodePersonaSection(v.secs.personas)
	if err != nil {
		return err
	}
	if len(personas) != len(v.secs.flowSets) {
		return fmt.Errorf("store: snapshot has %d personas but %d flow sections", len(personas), len(v.secs.flowSets))
	}
	dec, err := decodeSymbolSection(v.secs.symbols)
	if err != nil {
		return err
	}
	v.personas, v.dec = personas, dec
	return nil
}

// columnIndex builds (once) the column-selective decode state of a v3
// snapshot: registered personas, the string-skipping table scan, and the
// split columns of every flow section. Unlike index it interns nothing.
// Callers hold v.mu.
func (v *SnapshotView) columnIndex() error {
	if v.scan != nil {
		return nil
	}
	if v.personas == nil {
		personas, err := decodePersonaSection(v.secs.personas)
		if err != nil {
			return err
		}
		if len(personas) != len(v.secs.flowSets) {
			return fmt.Errorf("store: snapshot has %d personas but %d flow sections", len(personas), len(v.secs.flowSets))
		}
		v.personas = personas
	}
	r := wire.NewReader(v.secs.symbols)
	scan, err := flows.ScanSetTables(r)
	if err != nil {
		return fmt.Errorf("store: snapshot symbol tables: %w", err)
	}
	if err := r.Close(); err != nil {
		return fmt.Errorf("store: snapshot symbol tables: %w", err)
	}
	cols := make([]flows.SetColumns, len(v.secs.flowSets))
	for i, data := range v.secs.flowSets {
		if cols[i], err = flows.SplitSetColumns(data); err != nil {
			return fmt.Errorf("store: snapshot flow set for %s: %w", v.personas[i], err)
		}
	}
	v.scan, v.cols = scan, cols
	return nil
}

// Result fully materializes the snapshot — equivalent to DecodeResult over
// the original bytes, and byte-identical under re-encoding.
func (v *SnapshotView) Result() (*core.ServiceResult, error) {
	return v.materialize(nil)
}

// PartialResult materializes the snapshot's identity, counters, and
// persona registrations, but only the flow sets of the named personas
// (matched against persona names and aliases) — the other personas'
// flow sections are never decoded. Personas outside the filter are absent
// from ByTrace entirely. A nil filter materializes everything. Version-1
// snapshots cannot seek, so the filter degrades to a full decode followed
// by trimming.
func (v *SnapshotView) PartialResult(only []string) (*core.ServiceResult, error) {
	if only == nil {
		return v.materialize(nil)
	}
	filter := func(personas []flows.Persona) map[flows.Persona]bool {
		want := make(map[flows.Persona]bool, len(only))
		for _, name := range only {
			if p, ok := flows.ParsePersona(name); ok {
				want[p] = true
			}
		}
		keep := make(map[flows.Persona]bool, len(personas))
		for _, p := range personas {
			if want[p] {
				keep[p] = true
			}
		}
		return keep
	}
	return v.materialize(filter)
}

// materialize decodes the snapshot, restricting flow-set decoding to the
// personas the filter selects (computed after persona registration, so the
// filter can match names the process had never seen). Each call is one
// decode for the counter — the server's warm paths must never get here.
func (v *SnapshotView) materialize(filter func([]flows.Persona) map[flows.Persona]bool) (*core.ServiceResult, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.closed {
		return nil, fmt.Errorf("store: snapshot view is closed")
	}
	decodes.Add(1)
	if v.version == 1 {
		res, err := decodeV1(v.payload)
		if err != nil || filter == nil {
			return res, err
		}
		keep := filter(res.Personas())
		for p := range res.ByTrace {
			if !keep[p] {
				delete(res.ByTrace, p)
			}
		}
		return res, nil
	}

	res, err := decodeMetaSection(v.secs.meta)
	if err != nil {
		return nil, err
	}
	if err := v.index(); err != nil {
		return nil, err
	}
	var keep map[flows.Persona]bool
	if filter != nil {
		keep = filter(v.personas)
	}
	if err := v.secs.decodeFlowSetsInto(v.dec, v.personas, keep, res); err != nil {
		return nil, err
	}
	return res, nil
}

// PersonaGrid reduces one persona's flows to Table 4 granularity — level-2
// data type group × destination class → platform mask — equal to
// materializing the persona and calling Set.GroupGrid. On a columnar (v3)
// snapshot it decodes only that persona's three columns against a
// string-skipping table scan: no symbol interning, no Set construction,
// none of the other personas' bytes. Earlier versions fall back to partial
// materialization. The name matches persona names and aliases, like
// PartialResult.
func (v *SnapshotView) PersonaGrid(name string) (map[ontology.Level2]map[flows.DestClass]flows.PlatformMask, error) {
	if v.Version() >= 3 {
		v.mu.Lock()
		defer v.mu.Unlock()
		if v.closed {
			return nil, fmt.Errorf("store: snapshot view is closed")
		}
		decodes.Add(1)
		if err := v.columnIndex(); err != nil {
			return nil, err
		}
		i, ok := v.personaAt(name)
		if !ok {
			return nil, fmt.Errorf("store: snapshot has no persona %q", name)
		}
		grid, err := v.cols[i].Grid(v.scan)
		if err != nil {
			return nil, fmt.Errorf("store: snapshot flow set for %s: %w", v.personas[i], err)
		}
		return grid, nil
	}
	res, err := v.PartialResult([]string{name})
	if err != nil {
		return nil, err
	}
	for _, set := range res.ByTrace {
		return set.GroupGrid(), nil
	}
	return nil, fmt.Errorf("store: snapshot has no persona %q", name)
}

// PersonaLinkability builds the third-party linkability index of one
// persona's flows. On a columnar snapshot the index streams straight off
// the persona's category and destination columns — the platform-mask
// column and the flow Set are never materialized. Earlier versions fall
// back to partial materialization. Name matching follows PartialResult.
func (v *SnapshotView) PersonaLinkability(name string) (*linkability.Index, error) {
	if v.Version() >= 3 {
		v.mu.Lock()
		defer v.mu.Unlock()
		if v.closed {
			return nil, fmt.Errorf("store: snapshot view is closed")
		}
		decodes.Add(1)
		// Linkability resolves live symbols, so it needs the re-interned
		// tables (index) plus the split columns (columnIndex).
		if err := v.index(); err != nil {
			return nil, err
		}
		if err := v.columnIndex(); err != nil {
			return nil, err
		}
		i, ok := v.personaAt(name)
		if !ok {
			return nil, fmt.Errorf("store: snapshot has no persona %q", name)
		}
		ix, err := linkability.NewIndexColumns(v.dec, v.cols[i])
		if err != nil {
			return nil, fmt.Errorf("store: snapshot flow set for %s: %w", v.personas[i], err)
		}
		return ix, nil
	}
	res, err := v.PartialResult([]string{name})
	if err != nil {
		return nil, err
	}
	for _, set := range res.ByTrace {
		return linkability.NewIndex(set), nil
	}
	return nil, fmt.Errorf("store: snapshot has no persona %q", name)
}

// personaAt resolves a persona name or alias to its section index.
// Callers hold v.mu with the persona cache built.
func (v *SnapshotView) personaAt(name string) (int, bool) {
	p, ok := flows.ParsePersona(name)
	if !ok {
		return 0, false
	}
	for i, have := range v.personas {
		if have == p {
			return i, true
		}
	}
	return 0, false
}

// Viewer is implemented by stores that can open snapshots as lazy views
// instead of eagerly decoding them. The caller owns the returned view and
// must Close it.
type Viewer interface {
	View(ref string) (*SnapshotView, error)
}

// View implements Viewer: the snapshot file is mmapped where the platform
// supports it (read the whole file otherwise), the envelope is validated
// once, and nothing is decoded until the view materializes.
func (s *FSStore) View(ref string) (*SnapshotView, error) {
	metas, _ := s.List()
	meta, err := Resolve(metas, ref)
	if err != nil {
		return nil, err
	}
	raw, closer, err := mapFile(s.path(meta.Seq))
	if err != nil {
		if os.IsNotExist(err) {
			// Deleted between resolution and the open: stale reference.
			return nil, fmt.Errorf("store: %w: snapshot %d deleted", ErrUnresolved, meta.Seq)
		}
		return nil, fmt.Errorf("store: %w", err)
	}
	stored, data, err := parseSnapEnvelope(s.path(meta.Seq), raw)
	if err != nil {
		closer()
		return nil, err
	}
	if stored.Hash != meta.Hash {
		closer()
		return nil, fmt.Errorf("store: snapshot %d changed on disk (hash %s != %s)", meta.Seq, stored.Hash, meta.Hash)
	}
	return NewSnapshotView(data, meta, closer)
}

// View implements Viewer over the in-memory backend. The view shares the
// stored bytes (immutable after Put), so it stays readable even if the
// snapshot is deleted while the view is open.
func (s *MemStore) View(ref string) (*SnapshotView, error) {
	metas, _ := s.List()
	meta, err := Resolve(metas, ref)
	if err != nil {
		return nil, err
	}
	data, ok := s.fetch(meta)
	if !ok {
		return nil, fmt.Errorf("store: %w: snapshot %d deleted", ErrUnresolved, meta.Seq)
	}
	return NewSnapshotView(data, meta, nil)
}
