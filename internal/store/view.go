package store

import (
	"fmt"
	"sync"

	"diffaudit/internal/core"
	"diffaudit/internal/flows"
)

// SnapshotView is a lazy handle over one encoded snapshot: the envelope
// (magic, version, CRC) is validated exactly once when the view opens, and
// everything else — symbol tables, persona records, per-persona flow sets —
// materializes on demand. For version-2 (sectioned) snapshots a view can
// materialize a subset of personas without ever touching the flow bytes of
// the others, which is what lets a filtered /v1/diff skip most of the
// decode work. Version-1 snapshots open fine but materialize all-or-
// nothing (their payload is one sequential stream).
//
// The backing bytes may be an mmap of the store file (FSStore.View on
// platforms with mmap support). Materialized results never alias those
// bytes — every string and symbol is copied or re-interned during decode —
// so results outlive the view, but the view itself must not be used after
// Close. Views are safe for concurrent use.
type SnapshotView struct {
	meta    Meta
	version uint16
	secs    *snapSections // nil for version-1 snapshots
	payload []byte        // version-1 payload (nil for v2)

	mu     sync.Mutex
	closer func() error
	closed bool
}

// NewSnapshotView validates a snapshot's envelope and returns a lazy view.
// closer, if non-nil, releases the backing bytes (e.g. munmap) and runs
// exactly once, on Close.
func NewSnapshotView(data []byte, meta Meta, closer func() error) (*SnapshotView, error) {
	version, payload, err := checkSnapshot(data)
	if err != nil {
		if closer != nil {
			closer()
		}
		return nil, err
	}
	v := &SnapshotView{meta: meta, version: version, closer: closer}
	if version == 1 {
		v.payload = payload
		return v, nil
	}
	secs, err := splitSections(payload)
	if err != nil {
		if closer != nil {
			closer()
		}
		return nil, err
	}
	v.secs = secs
	return v, nil
}

// Meta returns the stored metadata the view was opened with.
func (v *SnapshotView) Meta() Meta { return v.meta }

// Version returns the snapshot codec version of the backing bytes.
func (v *SnapshotView) Version() uint16 { return v.version }

// Close releases the backing bytes. The view (and any zero-copy section
// slices, but not materialized results) is unusable afterwards.
func (v *SnapshotView) Close() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.closed {
		return nil
	}
	v.closed = true
	v.secs = nil
	v.payload = nil
	if v.closer != nil {
		return v.closer()
	}
	return nil
}

// Result fully materializes the snapshot — equivalent to DecodeResult over
// the original bytes, and byte-identical under re-encoding.
func (v *SnapshotView) Result() (*core.ServiceResult, error) {
	return v.materialize(nil)
}

// PartialResult materializes the snapshot's identity, counters, and
// persona registrations, but only the flow sets of the named personas
// (matched against persona names and aliases) — the other personas'
// flow sections are never decoded. Personas outside the filter are absent
// from ByTrace entirely. A nil filter materializes everything. Version-1
// snapshots cannot seek, so the filter degrades to a full decode followed
// by trimming.
func (v *SnapshotView) PartialResult(only []string) (*core.ServiceResult, error) {
	if only == nil {
		return v.materialize(nil)
	}
	filter := func(personas []flows.Persona) map[flows.Persona]bool {
		want := make(map[flows.Persona]bool, len(only))
		for _, name := range only {
			if p, ok := flows.ParsePersona(name); ok {
				want[p] = true
			}
		}
		keep := make(map[flows.Persona]bool, len(personas))
		for _, p := range personas {
			if want[p] {
				keep[p] = true
			}
		}
		return keep
	}
	return v.materialize(filter)
}

// materialize decodes the snapshot, restricting flow-set decoding to the
// personas the filter selects (computed after persona registration, so the
// filter can match names the process had never seen). Each call is one
// decode for the counter — the server's warm paths must never get here.
func (v *SnapshotView) materialize(filter func([]flows.Persona) map[flows.Persona]bool) (*core.ServiceResult, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.closed {
		return nil, fmt.Errorf("store: snapshot view is closed")
	}
	decodes.Add(1)
	if v.version == 1 {
		res, err := decodeV1(v.payload)
		if err != nil || filter == nil {
			return res, err
		}
		keep := filter(res.Personas())
		for p := range res.ByTrace {
			if !keep[p] {
				delete(res.ByTrace, p)
			}
		}
		return res, nil
	}

	res, err := decodeMetaSection(v.secs.meta)
	if err != nil {
		return nil, err
	}
	personas, err := decodePersonaSection(v.secs.personas)
	if err != nil {
		return nil, err
	}
	if len(personas) != len(v.secs.flowSets) {
		return nil, fmt.Errorf("store: snapshot has %d personas but %d flow sections", len(personas), len(v.secs.flowSets))
	}
	var keep map[flows.Persona]bool
	if filter != nil {
		keep = filter(personas)
	}
	dec, err := decodeSymbolSection(v.secs.symbols)
	if err != nil {
		return nil, err
	}
	for i, p := range personas {
		if keep != nil && !keep[p] {
			continue
		}
		set, err := dec.DecodeSetBytes(v.secs.flowSets[i])
		if err != nil {
			return nil, fmt.Errorf("store: snapshot flow set for %s: %w", p, err)
		}
		res.ByTrace[p] = set
	}
	return res, nil
}

// Viewer is implemented by stores that can open snapshots as lazy views
// instead of eagerly decoding them. The caller owns the returned view and
// must Close it.
type Viewer interface {
	View(ref string) (*SnapshotView, error)
}

// View implements Viewer: the snapshot file is mmapped where the platform
// supports it (read the whole file otherwise), the envelope is validated
// once, and nothing is decoded until the view materializes.
func (s *FSStore) View(ref string) (*SnapshotView, error) {
	metas, _ := s.List()
	meta, err := Resolve(metas, ref)
	if err != nil {
		return nil, err
	}
	raw, closer, err := mapFile(s.path(meta.Seq))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	stored, data, err := parseSnapEnvelope(s.path(meta.Seq), raw)
	if err != nil {
		closer()
		return nil, err
	}
	if stored.Hash != meta.Hash {
		closer()
		return nil, fmt.Errorf("store: snapshot %d changed on disk (hash %s != %s)", meta.Seq, stored.Hash, meta.Hash)
	}
	return NewSnapshotView(data, meta, closer)
}

// View implements Viewer over the in-memory backend.
func (s *MemStore) View(ref string) (*SnapshotView, error) {
	s.mu.Lock()
	snaps := append([]memSnap(nil), s.snaps...)
	s.mu.Unlock()
	metas := make([]Meta, len(snaps))
	for i, sn := range snaps {
		metas[i] = sn.meta
	}
	meta, err := Resolve(metas, ref)
	if err != nil {
		return nil, err
	}
	for _, sn := range snaps {
		if sn.meta.Seq == meta.Seq {
			return NewSnapshotView(sn.data, meta, nil)
		}
	}
	return nil, fmt.Errorf("store: snapshot %d vanished", meta.Seq)
}
