package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"

	"diffaudit/internal/core"
	"diffaudit/internal/report"
)

// exportOf renders one result's JSON export.
func exportOf(t *testing.T, r *core.ServiceResult) []byte {
	t.Helper()
	data, err := report.ExportJSON([]*core.ServiceResult{r})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// testStoreContract exercises the Store interface contract shared by both
// backends.
func testStoreContract(t *testing.T, s Store) {
	t.Helper()
	a := auditOne(t, "Quizlet")
	b := auditOne(t, "Roblox")

	ma, err := s.Put("job-1", a)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := s.Put("job-2", b)
	if err != nil {
		t.Fatal(err)
	}
	if ma.Seq >= mb.Seq {
		t.Errorf("sequence not monotonic: %d then %d", ma.Seq, mb.Seq)
	}
	if ma.Hash == mb.Hash {
		t.Error("different results share a content hash")
	}
	if ma.Service != "Quizlet" || mb.Service != "Roblox" {
		t.Errorf("services = %q, %q", ma.Service, mb.Service)
	}

	metas, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) != 2 || metas[0].Seq != ma.Seq || metas[1].Seq != mb.Seq {
		t.Fatalf("List = %+v", metas)
	}

	// Get by every reference kind.
	for _, ref := range []string{"job-1", ma.Hash, ma.Hash[:8]} {
		got, meta, err := s.Get(ref)
		if err != nil {
			t.Fatalf("Get(%q): %v", ref, err)
		}
		if meta.Seq != ma.Seq {
			t.Errorf("Get(%q) seq = %d, want %d", ref, meta.Seq, ma.Seq)
		}
		if !bytes.Equal(exportOf(t, got), exportOf(t, a)) {
			t.Errorf("Get(%q) export differs from the stored result", ref)
		}
	}
	// By sequence number (formatted as decimal).
	if _, meta, err := s.Get("2"); err != nil || meta.Seq != 2 {
		t.Errorf("Get by seq: meta=%+v err=%v", meta, err)
	}
	// Unknown and too-short prefixes fail.
	for _, ref := range []string{"job-9", "999", ma.Hash[:4], "zzzzzz"} {
		if _, _, err := s.Get(ref); err == nil {
			t.Errorf("Get(%q) succeeded", ref)
		}
	}

	// Storing identical content again: new seq, same hash; the hash ref
	// resolves to the newest copy.
	ma2, err := s.Put("job-3", a)
	if err != nil {
		t.Fatal(err)
	}
	if ma2.Hash != ma.Hash {
		t.Error("identical content hashed differently")
	}
	if _, meta, err := s.Get(ma.Hash); err != nil || meta.Seq != ma2.Seq {
		t.Errorf("hash ref resolves to seq %d (err %v), want newest %d", meta.Seq, err, ma2.Seq)
	}

	// Delete drops exactly one snapshot.
	if err := s.Delete("job-3"); err != nil {
		t.Fatal(err)
	}
	metas, _ = s.List()
	if len(metas) != 2 {
		t.Fatalf("after delete: %+v", metas)
	}
	if _, _, err := s.Get("job-1"); err != nil {
		t.Errorf("job-1 gone after deleting job-3: %v", err)
	}
}

func TestMemStore(t *testing.T) { testStoreContract(t, NewMemStore()) }

func TestFSStore(t *testing.T) {
	s, err := OpenFSStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	testStoreContract(t, s)
}

// TestFSStoreRestart pins restart durability: a fresh FSStore over the same
// directory serves the previous process's snapshots byte-identically and
// continues the sequence without reuse.
func TestFSStoreRestart(t *testing.T) {
	dir := t.TempDir()
	res := auditOne(t, "Quizlet")

	s1, err := OpenFSStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := s1.Put("job-1", res)
	if err != nil {
		t.Fatal(err)
	}
	want := exportOf(t, res)

	s2, err := OpenFSStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, m2, err := s2.Get("job-1")
	if err != nil {
		t.Fatal(err)
	}
	if m2.Hash != m1.Hash || m2.Seq != m1.Seq || m2.JobID != "job-1" {
		t.Errorf("rescanned meta = %+v, want %+v", m2, m1)
	}
	if !bytes.Equal(exportOf(t, got), want) {
		t.Error("rescanned snapshot export differs")
	}

	// The restarted store must not reuse sequence numbers.
	m3, err := s2.Put("job-2", auditOne(t, "Roblox"))
	if err != nil {
		t.Fatal(err)
	}
	if m3.Seq <= m1.Seq {
		t.Errorf("restarted store reused sequence: %d after %d", m3.Seq, m1.Seq)
	}
}

// TestFSStoreIgnoresJunk checks rescan resilience: crash orphans and
// corrupted snapshot files are skipped, not fatal, and a truncated
// snapshot never serves.
func TestFSStoreIgnoresJunk(t *testing.T) {
	dir := t.TempDir()
	s1, err := OpenFSStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Put("job-1", auditOne(t, "Quizlet")); err != nil {
		t.Fatal(err)
	}

	// A crash orphan, a random file, and a truncated copy of the real one.
	if err := os.WriteFile(filepath.Join(dir, ".tmp-crash"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	real, err := os.ReadFile(filepath.Join(dir, "000000000001.snap"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "000000000099.snap"), real[:len(real)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenFSStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	metas, _ := s2.List()
	if len(metas) != 1 || metas[0].JobID != "job-1" {
		t.Fatalf("rescan over junk: %+v", metas)
	}
	if _, err := os.Stat(filepath.Join(dir, ".tmp-crash")); !os.IsNotExist(err) {
		t.Error("crash orphan not cleaned up")
	}

	// A skipped file still owns its sequence number: the next Put must
	// not rename over the corrupt 000000000099.snap (a newer build might
	// still recover it), so it lands at sequence 100.
	corrupt, err := os.ReadFile(filepath.Join(dir, "000000000099.snap"))
	if err != nil {
		t.Fatal(err)
	}
	m, err := s2.Put("job-2", auditOne(t, "Roblox"))
	if err != nil {
		t.Fatal(err)
	}
	if m.Seq != 100 {
		t.Errorf("Put after corrupt seq 99 got seq %d, want 100", m.Seq)
	}
	after, err := os.ReadFile(filepath.Join(dir, "000000000099.snap"))
	if err != nil || !bytes.Equal(after, corrupt) {
		t.Error("Put overwrote a skipped snapshot file")
	}
}

// TestFSStoreConcurrentHandles: two store handles over one directory (a
// live server plus a CLI run, or two processes) must never overwrite each
// other's snapshots — publication is link-exclusive, so the loser of a
// sequence race skips to the next free number.
func TestFSStoreConcurrentHandles(t *testing.T) {
	dir := t.TempDir()
	a, err := OpenFSStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := OpenFSStore(dir) // same nextSeq view as a
	if err != nil {
		t.Fatal(err)
	}
	resA := auditOne(t, "Quizlet")
	resB := auditOne(t, "Roblox")
	ma, err := a.Put("job-a", resA)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := b.Put("job-b", resB)
	if err != nil {
		t.Fatal(err)
	}
	if ma.Seq == mb.Seq {
		t.Fatalf("both handles claimed sequence %d", ma.Seq)
	}

	// Both snapshots survive a rescan.
	fresh, err := OpenFSStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	metas, _ := fresh.List()
	if len(metas) != 2 {
		t.Fatalf("rescan found %d snapshots, want 2: %+v", len(metas), metas)
	}
	if got, _, err := fresh.Get("job-a"); err != nil || got.Identity.Name != "Quizlet" {
		t.Errorf("job-a: %v", err)
	}
	if got, _, err := fresh.Get("job-b"); err != nil || got.Identity.Name != "Roblox" {
		t.Errorf("job-b: %v", err)
	}
}

// TestResolveJobIDNewestWins: a job ID recorded on several snapshots
// (re-runs, concurrent writers) resolves to the newest one even when the
// contents differ — job refs are not subject to the hash ambiguity rule.
func TestResolveJobIDNewestWins(t *testing.T) {
	metas := []Meta{
		{Seq: 1, Hash: "aaaa111111", JobID: "job-1"},
		{Seq: 2, Hash: "bbbb222222", JobID: "job-1"},
	}
	if m, err := Resolve(metas, "job-1"); err != nil || m.Seq != 2 {
		t.Errorf("job ref: %+v, %v", m, err)
	}
}

// TestResolveAmbiguity: a prefix matching two different snapshots errors.
func TestResolveAmbiguity(t *testing.T) {
	metas := []Meta{
		{Seq: 1, Hash: "abcdef1111", JobID: "job-1"},
		{Seq: 2, Hash: "abcdef2222", JobID: "job-2"},
	}
	if _, err := Resolve(metas, "abcdef"); err == nil {
		t.Error("ambiguous prefix resolved")
	}
	if m, err := Resolve(metas, "abcdef1111"); err != nil || m.Seq != 1 {
		t.Errorf("exact hash: %+v, %v", m, err)
	}
	if _, err := Resolve(metas, ""); err == nil {
		t.Error("empty ref resolved")
	}
}

// TestResolveAllDigitHashPrefix: a reference that parses as a number but
// matches no sequence must still fall through to hash-prefix matching —
// about 6% of hex hashes open with six decimal digits.
func TestResolveAllDigitHashPrefix(t *testing.T) {
	metas := []Meta{
		{Seq: 1, Hash: "482913abcdef", JobID: "job-1"},
		{Seq: 2, Hash: "feedbeefcafe", JobID: "job-2"},
	}
	if m, err := Resolve(metas, "482913"); err != nil || m.Seq != 1 {
		t.Errorf("all-digit hash prefix: %+v, %v", m, err)
	}
	// Sequence matches keep precedence over digit-prefix hashes.
	if m, err := Resolve(metas, "2"); err != nil || m.Seq != 2 {
		t.Errorf("seq precedence: %+v, %v", m, err)
	}
	// And a number matching neither seq nor hash still errors.
	if _, err := Resolve(metas, "999999"); err == nil {
		t.Error("unmatched number resolved")
	}
}

// TestStoreConcurrentMixedOps hammers both backends with the mixed
// workload the sharded index exists for: concurrent Gets of stable
// snapshots, Put+Delete churn, and List scans, all racing. Run under
// -race this pins the locking layout; the assertions pin the semantics —
// stable snapshots never fail to serve, the listing stays seq-ascending,
// and a view opened before its snapshot is deleted keeps serving
// byte-identical results (MemStore shares immutable bytes; FSStore's
// mapped inode survives the unlink).
func TestStoreConcurrentMixedOps(t *testing.T) {
	seeds := []*core.ServiceResult{auditOne(t, "Quizlet"), auditOne(t, "Roblox")}
	churn := auditOne(t, "Duolingo")
	churnExport := exportOf(t, churn)

	backends := []struct {
		name string
		open func(t *testing.T) Store
	}{
		{"mem", func(t *testing.T) Store { return NewMemStore() }},
		{"fs", func(t *testing.T) Store {
			s, err := OpenFSStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return s
		}},
	}
	for _, be := range backends {
		t.Run(be.name, func(t *testing.T) {
			s := be.open(t)
			refs := make([]string, len(seeds))
			for i, r := range seeds {
				m, err := s.Put(fmt.Sprintf("seed-%d", i), r)
				if err != nil {
					t.Fatal(err)
				}
				refs[i] = m.Hash
			}

			var wg sync.WaitGroup
			errc := make(chan error, 64)
			fail := func(format string, args ...any) {
				select {
				case errc <- fmt.Errorf(format, args...):
				default:
				}
			}

			// Readers: the seeds are never deleted, so every Get must
			// succeed and resolve to the right content.
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < 40; i++ {
						ref := refs[(g+i)%len(refs)]
						res, meta, err := s.Get(ref)
						if err != nil {
							fail("Get(%q): %v", ref, err)
							return
						}
						if res == nil || meta.Hash != ref {
							fail("Get(%q) resolved to %q", ref, meta.Hash)
							return
						}
					}
				}(g)
			}

			// Churners: Put and immediately Delete by unique sequence.
			for g := 0; g < 2; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < 15; i++ {
						m, err := s.Put("churn", churn)
						if err != nil {
							fail("churn Put: %v", err)
							return
						}
						if err := s.Delete(strconv.FormatUint(m.Seq, 10)); err != nil {
							fail("churn Delete(%d): %v", m.Seq, err)
							return
						}
					}
				}()
			}

			// Lister: the listing must always be seq-ascending, whatever
			// order concurrent Puts complete in.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 60; i++ {
					metas, err := s.List()
					if err != nil {
						fail("List: %v", err)
						return
					}
					for j := 1; j < len(metas); j++ {
						if metas[j-1].Seq >= metas[j].Seq {
							fail("List out of order: seq %d before %d", metas[j-1].Seq, metas[j].Seq)
							return
						}
					}
				}
			}()

			// Delete-while-view-open: a view opened before the delete keeps
			// serving the full result, byte-identically, while Gets through
			// the store agree the snapshot is gone.
			wg.Add(1)
			go func() {
				defer wg.Done()
				viewer, ok := s.(Viewer)
				if !ok {
					fail("backend does not implement Viewer")
					return
				}
				for i := 0; i < 8; i++ {
					m, err := s.Put("view-churn", churn)
					if err != nil {
						fail("view Put: %v", err)
						return
					}
					seqRef := strconv.FormatUint(m.Seq, 10)
					v, err := viewer.View(seqRef)
					if err != nil {
						fail("View(%s): %v", seqRef, err)
						return
					}
					if err := s.Delete(seqRef); err != nil {
						fail("Delete(%s): %v", seqRef, err)
						return
					}
					res, err := v.Result()
					if err != nil {
						fail("Result after delete: %v", err)
						v.Close()
						return
					}
					// exportOf would t.Fatal off the test goroutine; export
					// directly and report through the error channel instead.
					export, err := report.ExportJSON([]*core.ServiceResult{res})
					if err != nil {
						fail("export after delete: %v", err)
						v.Close()
						return
					}
					if !bytes.Equal(export, churnExport) {
						fail("view after delete served different bytes")
						v.Close()
						return
					}
					v.Close()
					if _, _, err := s.Get(seqRef); !errors.Is(err, ErrUnresolved) {
						fail("Get(%s) after delete: %v, want ErrUnresolved", seqRef, err)
						return
					}
				}
			}()

			wg.Wait()
			close(errc)
			for err := range errc {
				t.Error(err)
			}
		})
	}
}
