package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"testing"

	"diffaudit/internal/core"
	"diffaudit/internal/flows"
	"diffaudit/internal/report"
	"diffaudit/internal/synth"
)

// auditOne runs the pipeline over one synthesized service.
func auditOne(t testing.TB, name string) *core.ServiceResult {
	t.Helper()
	ds := synth.Generate(synth.Config{Scale: 0.01})
	st := ds.Service(name)
	return core.NewPipeline().AnalyzeRecords(st.Identity(), st.Records())
}

// TestRoundTrip pins the codec's core contract: decode(encode(x)) renders
// byte-identically to x through every export path, and re-encoding the
// decoded result reproduces the original bytes (canonical encoding — the
// content hash is stable across encode/decode cycles).
func TestRoundTrip(t *testing.T) {
	res := auditOne(t, "Quizlet")
	enc := EncodeResult(res)

	dec, err := DecodeResult(enc)
	if err != nil {
		t.Fatal(err)
	}

	// Scalar and identity fields survive (ServiceIdentity holds a slice,
	// so compare field-wise).
	if dec.Identity.Name != res.Identity.Name || dec.Identity.Owner != res.Identity.Owner {
		t.Errorf("identity = %+v, want %+v", dec.Identity, res.Identity)
	}
	if len(dec.Identity.FirstPartyESLDs) != len(res.Identity.FirstPartyESLDs) {
		t.Errorf("eslds = %v, want %v", dec.Identity.FirstPartyESLDs, res.Identity.FirstPartyESLDs)
	}
	if dec.Packets != res.Packets || dec.TCPFlows != res.TCPFlows || dec.DroppedKeys != res.DroppedKeys {
		t.Errorf("counters = %d/%d/%d, want %d/%d/%d",
			dec.Packets, dec.TCPFlows, dec.DroppedKeys, res.Packets, res.TCPFlows, res.DroppedKeys)
	}
	if len(dec.Domains) != len(res.Domains) || len(dec.RawKeys) != len(res.RawKeys) {
		t.Error("domain/raw-key sets differ")
	}

	// Rendered artifacts are byte-identical.
	wantJSON, err := report.ExportJSON([]*core.ServiceResult{res})
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := report.ExportJSON([]*core.ServiceResult{dec})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Error("ExportJSON differs after decode(encode(x))")
	}
	if got, want := report.AuditReport(dec), report.AuditReport(res); got != want {
		t.Error("AuditReport differs after decode(encode(x))")
	}

	// Canonical: re-encoding the decoded result reproduces the bytes, so
	// the content hash is stable.
	enc2 := EncodeResult(dec)
	if !bytes.Equal(enc, enc2) {
		t.Error("encode(decode(encode(x))) is not byte-identical")
	}
	if Hash(enc) != Hash(enc2) {
		t.Error("content hash unstable across a round trip")
	}
}

// TestRoundTripCustomPersona checks snapshots carry custom persona
// registrations: a result keyed by a custom persona decodes with the
// persona registered and its flows intact.
func TestRoundTripCustomPersona(t *testing.T) {
	p, err := flows.RegisterPersona(flows.PersonaInfo{
		Name: "Codec Kid", Aliases: []string{"codec-kid"},
		AgeKnown: true, AgeMin: 6, AgeMax: 9, LoggedIn: true,
		Attrs: map[string]string{"region": "EU", "tier": "free"},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := auditOne(t, "Duolingo")
	// Move the child trace onto the custom persona.
	res.ByTrace[p] = res.ByTrace[flows.Child]
	delete(res.ByTrace, flows.Child)

	enc := EncodeResult(res)
	dec, err := DecodeResult(enc)
	if err != nil {
		t.Fatal(err)
	}
	set := dec.ByTrace[p]
	if set == nil || set.Len() != res.ByTrace[p].Len() {
		t.Fatalf("custom persona set lost: %v", set)
	}
	if !bytes.Equal(EncodeResult(dec), enc) {
		t.Error("custom-persona snapshot not canonical")
	}
}

// TestDecodeRejectsCorruption covers the failure paths: truncation, bad
// magic, future versions, and flipped payload bytes must all fail cleanly.
func TestDecodeRejectsCorruption(t *testing.T) {
	res := auditOne(t, "TikTok")
	enc := EncodeResult(res)

	t.Run("empty", func(t *testing.T) {
		if _, err := DecodeResult(nil); err == nil {
			t.Error("decoded nil input")
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), enc...)
		bad[0] ^= 0xff
		if _, err := DecodeResult(bad); err == nil {
			t.Error("decoded bad magic")
		}
	})
	t.Run("future version", func(t *testing.T) {
		bad := append([]byte(nil), enc...)
		binary.LittleEndian.PutUint16(bad[4:6], SnapshotVersion+1)
		if _, err := DecodeResult(bad); err == nil {
			t.Error("decoded future version")
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for _, n := range []int{1, 7, len(enc) / 2, len(enc) - 1} {
			if _, err := DecodeResult(enc[:n]); err == nil {
				t.Errorf("decoded %d-byte truncation", n)
			}
		}
	})
	t.Run("flipped byte", func(t *testing.T) {
		// Flip a payload byte; the CRC must catch it.
		for _, off := range []int{8, len(enc) / 2, len(enc) - 8} {
			bad := append([]byte(nil), enc...)
			bad[off] ^= 0x40
			if _, err := DecodeResult(bad); err == nil {
				t.Errorf("decoded snapshot with byte %d flipped", off)
			}
		}
	})
}

// TestConcurrentPooledEncodeIdentical hammers the pooled encode and
// columnar-decode scratch from many goroutines at once and requires every
// artifact to stay byte-identical to a single-threaded reference. Under
// -race (the CI chaos/race step covers this package) it is the proof
// that sync.Pool reuse never aliases bytes still owned by another
// request.
func TestConcurrentPooledEncodeIdentical(t *testing.T) {
	res := auditOne(t, "Quizlet")
	want := EncodeResult(res)
	meta := Meta{Hash: Hash(want)}

	const goroutines, rounds = 8, 20
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				enc := EncodeResult(res)
				if !bytes.Equal(enc, want) {
					errs[g] = fmt.Errorf("round %d: pooled encode diverged from reference", i)
					return
				}
				view, err := NewSnapshotView(enc, meta, nil)
				if err != nil {
					errs[g] = err
					return
				}
				dec, err := view.Result()
				view.Close()
				if err != nil {
					errs[g] = err
					return
				}
				if re := EncodeResult(dec); !bytes.Equal(re, want) {
					errs[g] = fmt.Errorf("round %d: re-encode after pooled decode diverged", i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
