package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"diffaudit/internal/faults"
)

// scrubStore builds an FSStore with two snapshots and returns it with
// their metadata and clean encoded bytes (the repair source the server's
// cache would provide).
func scrubStore(t *testing.T) (*FSStore, []Meta, map[string][]byte) {
	t.Helper()
	st, err := OpenFSStore(filepath.Join(t.TempDir(), "snapshots"))
	if err != nil {
		t.Fatal(err)
	}
	clean := map[string][]byte{}
	for i, name := range []string{"Quizlet", "Roblox"} {
		res := auditOne(t, name)
		m, err := st.Put("job-"+string(rune('1'+i)), res)
		if err != nil {
			t.Fatal(err)
		}
		clean[m.Hash] = EncodeResult(res)
	}
	metas, err := st.List()
	if err != nil || len(metas) != 2 {
		t.Fatalf("List = %v, %v", metas, err)
	}
	return st, metas, clean
}

// corruptFile flips a byte deep inside a snapshot file's payload, past
// the envelope header so the file still parses but the codec CRC fails.
func corruptFile(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mangled := append([]byte(nil), data...)
	mangled[len(mangled)/2] ^= 0xFF
	if err := os.WriteFile(path, mangled, 0o644); err != nil {
		t.Fatal(err)
	}
	return mangled
}

// TestScrubPassClean: a healthy store scrubs clean — every snapshot
// scanned, nothing flagged, nothing moved.
func TestScrubPassClean(t *testing.T) {
	st, _, _ := scrubStore(t)
	r := st.ScrubPass(nil)
	if r.Scanned != 2 || r.Corrupt != 0 || r.Repaired != 0 || r.Quarantined != 0 {
		t.Fatalf("clean scrub = %+v", r)
	}
	if _, err := os.Stat(st.QuarantineDir()); !os.IsNotExist(err) {
		t.Errorf("clean scrub created quarantine dir: %v", err)
	}
}

// TestScrubQuarantinesCorruption: a corrupt snapshot is detected, parked
// byte-for-byte in quarantine, and dropped from the listing so reads
// answer not-found instead of serving (or 500ing on) bad bytes.
func TestScrubQuarantinesCorruption(t *testing.T) {
	st, metas, _ := scrubStore(t)
	bad := metas[0]
	mangled := corruptFile(t, st.path(bad.Seq))

	r := st.ScrubPass(nil) // no repair source
	if r.Scanned != 2 || r.Corrupt != 1 || r.Quarantined != 1 || r.Repaired != 0 {
		t.Fatalf("scrub = %+v, want 1 corrupt quarantined", r)
	}

	// Dropped from the listing: the reference no longer resolves.
	if _, _, err := st.Get(bad.Hash); !errors.Is(err, ErrUnresolved) {
		t.Errorf("Get(corrupt) = %v, want ErrUnresolved", err)
	}
	left, err := st.List()
	if err != nil || len(left) != 1 || left[0].Seq == bad.Seq {
		t.Errorf("List after scrub = %+v, %v", left, err)
	}
	// The healthy snapshot still serves.
	if _, _, err := st.Get(left[0].Hash); err != nil {
		t.Errorf("Get(healthy) after scrub: %v", err)
	}

	// Evidence preserved exactly.
	parked, err := os.ReadFile(filepath.Join(st.QuarantineDir(), filepath.Base(st.path(bad.Seq))))
	if err != nil {
		t.Fatalf("quarantined file: %v", err)
	}
	if !bytes.Equal(parked, mangled) {
		t.Error("quarantined bytes differ from the corrupt original")
	}
	// The serving path no longer holds the file.
	if _, err := os.Stat(st.path(bad.Seq)); !os.IsNotExist(err) {
		t.Errorf("corrupt file still in serving dir: %v", err)
	}

	// A restart agrees: reopening the directory sees one snapshot and
	// ignores the quarantine subdirectory.
	st2, err := OpenFSStore(st.dir)
	if err != nil {
		t.Fatal(err)
	}
	if again, _ := st2.List(); len(again) != 1 {
		t.Errorf("reopened store lists %d snapshots, want 1", len(again))
	}
}

// TestScrubRepairsFromFetch: when the caller can supply clean bytes for
// the corrupt snapshot's content hash, the file is rewritten in place and
// the snapshot never stops serving — and the corrupt original is still
// parked as evidence.
func TestScrubRepairsFromFetch(t *testing.T) {
	st, metas, clean := scrubStore(t)
	bad := metas[1]
	corruptFile(t, st.path(bad.Seq))

	fetch := func(hash string) ([]byte, bool) {
		data, ok := clean[hash]
		return data, ok
	}
	r := st.ScrubPass(fetch)
	if r.Scanned != 2 || r.Corrupt != 1 || r.Repaired != 1 || r.Quarantined != 0 {
		t.Fatalf("scrub = %+v, want 1 corrupt repaired", r)
	}

	// Still listed, still serving, and the rewritten file re-verifies.
	res, meta, err := st.Get(bad.Hash)
	if err != nil || res == nil || meta.Seq != bad.Seq {
		t.Fatalf("Get after repair = %v (meta %+v)", err, meta)
	}
	if err := st.verifySnapshotFile(bad); err != nil {
		t.Errorf("repaired file fails verification: %v", err)
	}
	if r2 := st.ScrubPass(fetch); r2.Corrupt != 0 {
		t.Errorf("second scrub still finds corruption: %+v", r2)
	}
}

// TestScrubRejectsWrongRepairBytes: a fetch that returns bytes not
// matching the snapshot's content hash must not be trusted — the
// snapshot is quarantined, not "repaired" into different content.
func TestScrubRejectsWrongRepairBytes(t *testing.T) {
	st, metas, clean := scrubStore(t)
	bad := metas[0]
	corruptFile(t, st.path(bad.Seq))

	wrong := clean[metas[1].Hash] // valid encoding, wrong snapshot
	r := st.ScrubPass(func(string) ([]byte, bool) { return wrong, true })
	if r.Repaired != 0 || r.Quarantined != 1 {
		t.Fatalf("scrub with lying fetch = %+v, want quarantine", r)
	}
}

// TestScrubInjectedCorruption: the "scrub.corrupt" injection point flags
// a healthy file corrupt, driving the quarantine machinery without real
// disk damage — the chaos hook the server suite builds on.
func TestScrubInjectedCorruption(t *testing.T) {
	defer faults.Reset()
	faults.Set("scrub.corrupt", faults.Plan{Err: errors.New("injected rot")})

	st, _, clean := scrubStore(t)
	fetch := func(hash string) ([]byte, bool) {
		data, ok := clean[hash]
		return data, ok
	}
	// Plan fires once: exactly one snapshot is flagged, and with clean
	// bytes on offer it is repaired in place.
	r := st.ScrubPass(fetch)
	if r.Scanned != 2 || r.Corrupt != 1 || r.Repaired != 1 {
		t.Fatalf("injected scrub = %+v, want 1 corrupt repaired", r)
	}
	faults.Reset()
	if r2 := st.ScrubPass(nil); r2.Corrupt != 0 {
		t.Errorf("post-injection scrub = %+v, want clean", r2)
	}
}
