package store

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"diffaudit/internal/core"
	"diffaudit/internal/faults"
	"diffaudit/internal/flows"
)

// The v2-vs-v3 benchmarks live here (not bench_test.go at the repo root)
// because only this package can fabricate genuine v2 row-format bytes via
// the test-only encodeV2 — the apples-to-apples baseline the columnar
// claim is measured against.

// BenchmarkPartialPersona measures materializing one persona out of a
// snapshot through a fresh view — the /v1/diff?personas= and partial
// report path. v2-rows decodes interleaved <cat,dest,mask> rows; the
// v3-columnar section decodes three column bodies into pooled scratch.
func BenchmarkPartialPersona(b *testing.B) {
	res := auditOne(b, "Quizlet")
	cases := []struct {
		name string
		enc  []byte
	}{
		{"v2-rows", encodeV2(res)},
		{"v3-columnar", EncodeResult(res)},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			meta := Meta{Hash: Hash(c.enc)}
			b.SetBytes(int64(len(c.enc)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				view, err := NewSnapshotView(c.enc, meta, nil)
				if err != nil {
					b.Fatal(err)
				}
				partial, err := view.PartialResult([]string{"child"})
				if err != nil {
					b.Fatal(err)
				}
				if partial.ByTrace[flows.Child].Len() == 0 {
					b.Fatal("empty partial")
				}
				view.Close()
			}
		})
	}
}

// BenchmarkPersonaGrid measures answering a Table 4 grid query for one
// persona through a fresh view, same API call on both encodings. v2 bytes
// force full persona materialization (decode every row, build the set,
// walk it); v3's columnar sections answer from the symbol-table scan plus
// the category and mask columns — the destination strings are never
// touched. This pair is the PR's partial-decode headline.
func BenchmarkPersonaGrid(b *testing.B) {
	res := auditOne(b, "Quizlet")
	cases := []struct {
		name string
		enc  []byte
	}{
		{"v2-rows", encodeV2(res)},
		{"v3-columnar", EncodeResult(res)},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			meta := Meta{Hash: Hash(c.enc)}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				view, err := NewSnapshotView(c.enc, meta, nil)
				if err != nil {
					b.Fatal(err)
				}
				grid, err := view.PersonaGrid("child")
				if err != nil {
					b.Fatal(err)
				}
				if grid == nil {
					b.Fatal("nil grid")
				}
				view.Close()
			}
		})
	}
}

// BenchmarkPersonaLinkability measures building one persona's linkability
// index through a fresh view. On v2 bytes the view must materialize the
// set and index it; on v3 the index feeds straight off the category and
// destination columns (the platform-mask column is never decoded — the
// index is mask-blind).
func BenchmarkPersonaLinkability(b *testing.B) {
	res := auditOne(b, "Quizlet")
	cases := []struct {
		name string
		enc  []byte
	}{
		{"v2-rows", encodeV2(res)},
		{"v3-columnar", EncodeResult(res)},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			meta := Meta{Hash: Hash(c.enc)}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				view, err := NewSnapshotView(c.enc, meta, nil)
				if err != nil {
					b.Fatal(err)
				}
				ix, err := view.PersonaLinkability("child")
				if err != nil {
					b.Fatal(err)
				}
				if ix.CountLinkable() == 0 {
					b.Fatal("no linkable parties")
				}
				view.Close()
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Mutex-convoy benchmark: the pre-sharding store layouts, replicated here
// byte-for-byte from the old Put/Get/Delete bodies, against the live
// sharded implementations. The old MemStore hashed the encoding under its
// global mutex and copied the whole snapshot slice per Get; the old
// FSStore held its global mutex across the temp-write+fsync+link+dirsync
// of every Put. Under a parallel mixed workload (mostly reads, some
// write+delete churn) those critical sections convoy every other
// operation behind them; the sharded layout keeps only short metadata
// sections under the index lock.

// oldMemStore is the pre-sharding in-memory layout.
type oldMemStore struct {
	mu      sync.Mutex
	snaps   []oldMemSnap
	nextSeq uint64
}

type oldMemSnap struct {
	meta Meta
	data []byte
}

func (s *oldMemStore) Put(jobID string, r *core.ServiceResult) (Meta, error) {
	data := EncodeResult(r)
	s.mu.Lock()
	defer s.mu.Unlock()
	meta := Meta{
		Seq:       s.nextSeq,
		Hash:      Hash(data),
		Service:   r.Identity.Name,
		JobID:     jobID,
		CreatedAt: time.Now().UTC(),
		Bytes:     len(data),
	}
	s.nextSeq++
	s.snaps = append(s.snaps, oldMemSnap{meta: meta, data: data})
	return meta, nil
}

func (s *oldMemStore) Get(ref string) (*core.ServiceResult, Meta, error) {
	s.mu.Lock()
	snaps := append([]oldMemSnap(nil), s.snaps...)
	s.mu.Unlock()
	metas := make([]Meta, len(snaps))
	for i, sn := range snaps {
		metas[i] = sn.meta
	}
	meta, err := Resolve(metas, ref)
	if err != nil {
		return nil, Meta{}, err
	}
	for _, sn := range snaps {
		if sn.meta.Seq == meta.Seq {
			res, err := DecodeResult(sn.data)
			return res, meta, err
		}
	}
	return nil, Meta{}, fmt.Errorf("store: snapshot %d vanished", meta.Seq)
}

func (s *oldMemStore) List() ([]Meta, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	metas := make([]Meta, len(s.snaps))
	for i, sn := range s.snaps {
		metas[i] = sn.meta
	}
	return metas, nil
}

func (s *oldMemStore) Delete(ref string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	metas := make([]Meta, len(s.snaps))
	for i, sn := range s.snaps {
		metas[i] = sn.meta
	}
	meta, err := Resolve(metas, ref)
	if err != nil {
		return err
	}
	for i, sn := range s.snaps {
		if sn.meta.Seq == meta.Seq {
			s.snaps = append(s.snaps[:i], s.snaps[i+1:]...)
			return nil
		}
	}
	return nil
}

// oldFSStore is the pre-sharding filesystem layout: one mutex held across
// the whole publish (temp write, fsync, hard link, dirsync) and across
// Delete's unlink.
type oldFSStore struct {
	dir     string
	mu      sync.Mutex
	metas   []Meta
	nextSeq uint64
}

func (s *oldFSStore) path(seq uint64) string {
	return fmt.Sprintf("%s/%012d.snap", s.dir, seq)
}

func (s *oldFSStore) Put(jobID string, r *core.ServiceResult) (Meta, error) {
	data := EncodeResult(r)
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		meta := Meta{
			Seq:       s.nextSeq,
			Hash:      Hash(data),
			Service:   r.Identity.Name,
			JobID:     jobID,
			CreatedAt: time.Now().UTC(),
			Bytes:     len(data),
		}
		err := publishSnapFile(s.dir, s.path(meta.Seq), meta, data)
		if os.IsExist(err) {
			s.nextSeq++
			continue
		}
		if err != nil {
			return Meta{}, err
		}
		s.nextSeq++
		s.metas = append(s.metas, meta)
		return meta, nil
	}
}

func (s *oldFSStore) Get(ref string) (*core.ServiceResult, Meta, error) {
	metas, _ := s.List()
	meta, err := Resolve(metas, ref)
	if err != nil {
		return nil, Meta{}, err
	}
	stored, data, err := readSnapFile(s.path(meta.Seq))
	if err != nil {
		return nil, Meta{}, err
	}
	if stored.Hash != meta.Hash {
		return nil, Meta{}, fmt.Errorf("store: snapshot %d changed on disk", meta.Seq)
	}
	res, err := DecodeResult(data)
	return res, meta, err
}

func (s *oldFSStore) List() ([]Meta, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Meta(nil), s.metas...), nil
}

func (s *oldFSStore) Delete(ref string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	meta, err := Resolve(s.metas, ref)
	if err != nil {
		return err
	}
	if err := os.Remove(s.path(meta.Seq)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: %w", err)
	}
	for i, m := range s.metas {
		if m.Seq == meta.Seq {
			s.metas = append(s.metas[:i], s.metas[i+1:]...)
			break
		}
	}
	return nil
}

// armSlowDisk injects 2ms of latency into every store.write (the temp
// write both layouts publish through), simulating an ordinary disk's
// fsync cost on runners whose temp filesystem syncs for free.
func armSlowDisk(b *testing.B) {
	faults.Set("store.write", faults.Plan{Delay: 2 * time.Millisecond, Count: -1})
	b.Cleanup(func() { faults.Clear("store.write") })
}

// BenchmarkStoreMutexConvoy runs the same parallel mixed workload — seven
// Gets of pre-stored snapshots, then one Put+Delete churn — against the
// old coarse-locked layouts and the live sharded ones. The gap between
// coarse and sharded is the convoy: on the coarse FSStore every reader
// in the run queues behind whichever writer is inside its fsync.
func BenchmarkStoreMutexConvoy(b *testing.B) {
	names := []string{"Quizlet", "Roblox", "Duolingo", "YouTube"}
	results := make([]*core.ServiceResult, len(names))
	for i, n := range names {
		results[i] = auditOne(b, n)
	}
	churn := auditOne(b, "TikTok")

	backends := []struct {
		name string
		open func(b *testing.B) Store
	}{
		{"mem-coarse", func(b *testing.B) Store { return &oldMemStore{nextSeq: 1} }},
		{"mem-sharded", func(b *testing.B) Store { return NewMemStore() }},
		{"fs-coarse", func(b *testing.B) Store { return &oldFSStore{dir: b.TempDir(), nextSeq: 1} }},
		{"fs-sharded", func(b *testing.B) Store {
			s, err := OpenFSStore(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			return s
		}},
		// The slowdisk pair is the convoy made visible on any hardware:
		// tmpfs fsyncs return in microseconds, so the latency a coarse
		// lock holds everyone behind is injected at the store.write point
		// (2ms per temp write — an ordinary disk's fsync). Coarse: every
		// reader queues behind the writer's sleep. Sharded: reads flow on
		// while the writer waits.
		{"fs-coarse-slowdisk", func(b *testing.B) Store {
			armSlowDisk(b)
			return &oldFSStore{dir: b.TempDir(), nextSeq: 1}
		}},
		{"fs-sharded-slowdisk", func(b *testing.B) Store {
			armSlowDisk(b)
			s, err := OpenFSStore(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			return s
		}},
	}
	for _, be := range backends {
		b.Run(be.name, func(b *testing.B) {
			s := be.open(b)
			refs := make([]string, len(results))
			for i, r := range results {
				m, err := s.Put(fmt.Sprintf("seed-%d", i), r)
				if err != nil {
					b.Fatal(err)
				}
				refs[i] = m.Hash
			}
			b.ResetTimer()
			// 8× GOMAXPROCS goroutines: the convoy is about waiters queuing
			// behind a lock held across blocking I/O, which shows up even
			// when cores are scarce — a coarse store pins every goroutine
			// behind the fsync; a sharded one lets the scheduler run other
			// requests' decodes while the writer waits on the disk.
			b.SetParallelism(8)
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					i++
					if i%8 == 0 {
						m, err := s.Put("churn", churn)
						if err != nil {
							b.Fatal(err)
						}
						if err := s.Delete(strconv.FormatUint(m.Seq, 10)); err != nil {
							b.Fatal(err)
						}
						continue
					}
					if _, _, err := s.Get(refs[i%len(refs)]); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}
