package store

import (
	"testing"

	"diffaudit/internal/flows"
)

// The v2-vs-v3 benchmarks live here (not bench_test.go at the repo root)
// because only this package can fabricate genuine v2 row-format bytes via
// the test-only encodeV2 — the apples-to-apples baseline the columnar
// claim is measured against.

// BenchmarkPartialPersona measures materializing one persona out of a
// snapshot through a fresh view — the /v1/diff?personas= and partial
// report path. v2-rows decodes interleaved <cat,dest,mask> rows; the
// v3-columnar section decodes three column bodies into pooled scratch.
func BenchmarkPartialPersona(b *testing.B) {
	res := auditOne(b, "Quizlet")
	cases := []struct {
		name string
		enc  []byte
	}{
		{"v2-rows", encodeV2(res)},
		{"v3-columnar", EncodeResult(res)},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			meta := Meta{Hash: Hash(c.enc)}
			b.SetBytes(int64(len(c.enc)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				view, err := NewSnapshotView(c.enc, meta, nil)
				if err != nil {
					b.Fatal(err)
				}
				partial, err := view.PartialResult([]string{"child"})
				if err != nil {
					b.Fatal(err)
				}
				if partial.ByTrace[flows.Child].Len() == 0 {
					b.Fatal("empty partial")
				}
				view.Close()
			}
		})
	}
}

// BenchmarkPersonaGrid measures answering a Table 4 grid query for one
// persona through a fresh view, same API call on both encodings. v2 bytes
// force full persona materialization (decode every row, build the set,
// walk it); v3's columnar sections answer from the symbol-table scan plus
// the category and mask columns — the destination strings are never
// touched. This pair is the PR's partial-decode headline.
func BenchmarkPersonaGrid(b *testing.B) {
	res := auditOne(b, "Quizlet")
	cases := []struct {
		name string
		enc  []byte
	}{
		{"v2-rows", encodeV2(res)},
		{"v3-columnar", EncodeResult(res)},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			meta := Meta{Hash: Hash(c.enc)}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				view, err := NewSnapshotView(c.enc, meta, nil)
				if err != nil {
					b.Fatal(err)
				}
				grid, err := view.PersonaGrid("child")
				if err != nil {
					b.Fatal(err)
				}
				if grid == nil {
					b.Fatal("nil grid")
				}
				view.Close()
			}
		})
	}
}

// BenchmarkPersonaLinkability measures building one persona's linkability
// index through a fresh view. On v2 bytes the view must materialize the
// set and index it; on v3 the index feeds straight off the category and
// destination columns (the platform-mask column is never decoded — the
// index is mask-blind).
func BenchmarkPersonaLinkability(b *testing.B) {
	res := auditOne(b, "Quizlet")
	cases := []struct {
		name string
		enc  []byte
	}{
		{"v2-rows", encodeV2(res)},
		{"v3-columnar", EncodeResult(res)},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			meta := Meta{Hash: Hash(c.enc)}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				view, err := NewSnapshotView(c.enc, meta, nil)
				if err != nil {
					b.Fatal(err)
				}
				ix, err := view.PersonaLinkability("child")
				if err != nil {
					b.Fatal(err)
				}
				if ix.CountLinkable() == 0 {
					b.Fatal("no linkable parties")
				}
				view.Close()
			}
		})
	}
}
