package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"sort"

	"diffaudit/internal/core"
	"diffaudit/internal/flows"
	"diffaudit/internal/wire"
)

// Snapshot codec: a self-contained, versioned binary encoding of one
// core.ServiceResult. "Self-contained" means the encoding carries its own
// symbol tables (category names and groups, resolved destinations, persona
// registrations), so a snapshot written by one process decodes in another
// whose intern tables assigned entirely different IDs — decoding re-interns
// every symbol into the live tables.
//
// The encoding is canonical: map-backed fields (domains, eSLDs, raw keys,
// persona attributes) are written sorted, flows in FlowKeyLess order, and
// personas by name (never by process-local registry ID), so
// encode(decode(encode(x))) == encode(x) byte for byte and identical
// results encode identically even across processes whose registries
// assigned different persona IDs. Content hashing (Hash) and the
// restart-durability guarantee ("the served report is byte-identical
// after a restart") both rest on this property.
//
// Layout:
//
//	magic "DASN" | version uint16 LE | payload | crc32(IEEE) uint32 LE
//
// The CRC covers magic, version, and payload. Truncated or corrupted input
// fails cleanly: every payload read is bounds-checked (package wire), so
// even a CRC collision cannot make the decoder panic or over-allocate.
// Decoders reject versions newer than SnapshotVersion with a clear error,
// leaving room for forward-versioned format evolution.

// snapMagic identifies a DiffAudit snapshot ("DiffAudit SNapshot").
const snapMagic = "DASN"

// SnapshotVersion is the current snapshot format version.
const SnapshotVersion = 1

// headerLen is magic + version; trailerLen is the CRC.
const (
	headerLen  = len(snapMagic) + 2
	trailerLen = 4
)

// Hash returns the content hash of an encoded snapshot: hex SHA-256 over
// the full encoding. Identical audit results hash identically no matter
// when or where they were serialized.
func Hash(encoded []byte) string {
	sum := sha256.Sum256(encoded)
	return hex.EncodeToString(sum[:])
}

// EncodeResult serializes a service result as a versioned snapshot.
func EncodeResult(r *core.ServiceResult) []byte {
	w := &wire.Writer{}
	w.Raw([]byte(snapMagic))
	var ver [2]byte
	binary.LittleEndian.PutUint16(ver[:], SnapshotVersion)
	w.Raw(ver[:])

	// Identity.
	w.String(r.Identity.Name)
	w.String(r.Identity.Owner)
	w.Int(len(r.Identity.FirstPartyESLDs))
	for _, e := range r.Identity.FirstPartyESLDs {
		w.String(e)
	}

	// Counters.
	w.Int(r.Packets)
	w.Int(r.TCPFlows)
	w.Int(r.DroppedKeys)

	// Dataset-level string sets, sorted for canonical output.
	writeStringSet(w, r.Domains)
	writeStringSet(w, r.ESLDs)
	writeStringSet(w, r.RawKeys)

	// Personas present in the result, each with the full registration
	// record so decoding processes can re-register them. Ordered by name,
	// not by registry ID: ID assignment depends on registration order,
	// which varies across processes (e.g. -persona flags passed in a
	// different order), and the content hash must not.
	personas := r.Personas()
	sort.Slice(personas, func(i, j int) bool {
		return personas[i].Info().Name < personas[j].Info().Name
	})
	w.Int(len(personas))
	for _, p := range personas {
		writePersonaInfo(w, p.Info())
	}

	// Flow symbol tables shared across the per-persona sets, then the sets
	// themselves, aligned with the persona list above.
	enc := flows.NewSetEncoder()
	for _, p := range personas {
		enc.Collect(r.ByTrace[p])
	}
	enc.WriteTables(w)
	for _, p := range personas {
		enc.WriteSet(w, r.ByTrace[p])
	}

	// Trailer CRC over everything so far.
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(w.Bytes()))
	w.Raw(crc[:])
	return w.Bytes()
}

// DecodeResult parses a snapshot back into a service result. Personas the
// snapshot references are registered into the process-wide registry
// (idempotently); a snapshot persona conflicting with an already-registered
// one of the same name is an error.
func DecodeResult(data []byte) (*core.ServiceResult, error) {
	if len(data) < headerLen+trailerLen {
		return nil, fmt.Errorf("store: snapshot too short (%d bytes)", len(data))
	}
	if string(data[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("store: not a snapshot (bad magic %q)", data[:len(snapMagic)])
	}
	version := binary.LittleEndian.Uint16(data[len(snapMagic):headerLen])
	if version == 0 || version > SnapshotVersion {
		return nil, fmt.Errorf("store: snapshot version %d not supported (this build reads up to %d)", version, SnapshotVersion)
	}
	body, trailer := data[:len(data)-trailerLen], data[len(data)-trailerLen:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(trailer); got != want {
		return nil, fmt.Errorf("store: snapshot checksum mismatch (corrupted or truncated)")
	}

	r := wire.NewReader(body[headerLen:])
	res := &core.ServiceResult{
		Identity: core.ServiceIdentity{
			Name:  r.String(),
			Owner: r.String(),
		},
		ByTrace: make(map[flows.Persona]*flows.Set),
	}
	nESLDs := r.Count(1)
	for i := 0; i < nESLDs; i++ {
		res.Identity.FirstPartyESLDs = append(res.Identity.FirstPartyESLDs, r.String())
	}

	res.Packets = r.Int()
	res.TCPFlows = r.Int()
	res.DroppedKeys = r.Int()

	res.Domains = readStringSet(r)
	res.ESLDs = readStringSet(r)
	res.RawKeys = readStringSet(r)

	nPersonas := r.Count(1)
	personas := make([]flows.Persona, 0, nPersonas)
	for i := 0; i < nPersonas; i++ {
		info, err := readPersonaInfo(r)
		if err != nil {
			return nil, err
		}
		p, err := flows.RegisterPersona(info)
		if err != nil {
			return nil, fmt.Errorf("store: snapshot persona %q: %w", info.Name, err)
		}
		personas = append(personas, p)
	}

	dec, err := flows.ReadSetTables(r)
	if err != nil {
		return nil, fmt.Errorf("store: snapshot symbol tables: %w", err)
	}
	for _, p := range personas {
		set, err := dec.ReadSet(r)
		if err != nil {
			return nil, fmt.Errorf("store: snapshot flow set for %s: %w", p, err)
		}
		res.ByTrace[p] = set
	}

	if err := r.Close(); err != nil {
		return nil, fmt.Errorf("store: snapshot payload: %w", err)
	}
	return res, nil
}

// writeStringSet writes a set-valued map as a sorted string list.
func writeStringSet(w *wire.Writer, set map[string]bool) {
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.Int(len(keys))
	for _, k := range keys {
		w.String(k)
	}
}

// readStringSet reads a string list back into a set-valued map.
func readStringSet(r *wire.Reader) map[string]bool {
	n := r.Count(1)
	set := make(map[string]bool, n)
	for i := 0; i < n; i++ {
		if s := r.String(); r.Err() == nil {
			set[s] = true
		}
	}
	return set
}

// writePersonaInfo writes one persona registration record.
func writePersonaInfo(w *wire.Writer, info flows.PersonaInfo) {
	w.String(info.Name)
	w.Int(len(info.Aliases))
	for _, a := range info.Aliases {
		w.String(a)
	}
	w.Bool(info.AgeKnown)
	w.Int(info.AgeMin)
	w.Int(info.AgeMax)
	w.Bool(info.LoggedIn)
	w.String(info.Subject)
	keys := make([]string, 0, len(info.Attrs))
	for k := range info.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.Int(len(keys))
	for _, k := range keys {
		w.String(k)
		w.String(info.Attrs[k])
	}
}

// readPersonaInfo reads one persona registration record.
func readPersonaInfo(r *wire.Reader) (flows.PersonaInfo, error) {
	var info flows.PersonaInfo
	info.Name = r.String()
	nAliases := r.Count(1)
	for i := 0; i < nAliases; i++ {
		info.Aliases = append(info.Aliases, r.String())
	}
	info.AgeKnown = r.Bool()
	info.AgeMin = r.Int()
	info.AgeMax = r.Int()
	info.LoggedIn = r.Bool()
	info.Subject = r.String()
	nAttrs := r.Count(2)
	if nAttrs > 0 {
		info.Attrs = make(map[string]string, nAttrs)
		for i := 0; i < nAttrs; i++ {
			k := r.String()
			v := r.String()
			if r.Err() == nil {
				info.Attrs[k] = v
			}
		}
	}
	if err := r.Err(); err != nil {
		return info, err
	}
	if info.Name == "" {
		return info, fmt.Errorf("store: snapshot persona with empty name")
	}
	if info.AgeKnown && info.AgeMin > info.AgeMax {
		return info, fmt.Errorf("store: snapshot persona %q has inverted age bracket", info.Name)
	}
	return info, nil
}
