package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"diffaudit/internal/core"
	"diffaudit/internal/flows"
	"diffaudit/internal/wire"
)

// Snapshot codec: a self-contained, versioned binary encoding of one
// core.ServiceResult. "Self-contained" means the encoding carries its own
// symbol tables (category names and groups, resolved destinations, persona
// registrations), so a snapshot written by one process decodes in another
// whose intern tables assigned entirely different IDs — decoding re-interns
// every symbol into the live tables.
//
// The encoding is canonical: map-backed fields (domains, eSLDs, raw keys,
// persona attributes) are written sorted, flows in FlowKeyLess order, and
// personas by name (never by process-local registry ID), so
// encode(decode(encode(x))) == encode(x) byte for byte and identical
// results encode identically even across processes whose registries
// assigned different persona IDs. Content hashing (Hash) and the
// restart-durability guarantee ("the served report is byte-identical
// after a restart") both rest on this property.
//
// Layout (version 3):
//
//	magic "DASN" | version uint16 LE | section directory | sections | crc32(IEEE) uint32 LE
//
// The payload is framed into independently seekable sections
// (wire.WriteSections): a directory of (kind, length) entries, then the
// bodies. Section order is fixed and canonical — meta, personas, symbol
// tables, then one flow-set section per persona in persona order — but a
// reader can locate any section from the directory alone, which is what
// lets SnapshotView materialize a single persona's flows without decoding
// (or re-interning) anything else.
//
// Version 3 stores each flow-set section in columnar form (parallel
// category/destination/mask columns, flows.WriteSetColumnar), so queries
// decode only the columns they touch; version 2 interleaved the three per
// flow, and version 1 wrote the same logical fields as one unframed
// stream. Decoders accept all three.
//
// The CRC covers magic, version, and payload. Truncated or corrupted input
// fails cleanly: every payload read is bounds-checked (package wire), so
// even a CRC collision cannot make the decoder panic or over-allocate.
// Decoders reject versions newer than SnapshotVersion with a clear error,
// leaving room for forward-versioned format evolution.

// snapMagic identifies a DiffAudit snapshot ("DiffAudit SNapshot").
const snapMagic = "DASN"

// SnapshotVersion is the current snapshot format version. Version 3 made
// the flow-set sections columnar; version 2 added the seekable section
// framing; version-1 snapshots (PR 5/6 stores) still decode, they just
// cannot be partially materialized.
const SnapshotVersion = 3

// Section kinds of the sectioned (v2/v3) framing.
const (
	secMeta     byte = 1 // identity, counters, dataset string sets
	secPersonas byte = 2 // persona registration records, sorted by name
	secSymbols  byte = 3 // flow symbol tables shared by every set
	secFlowSet  byte = 4 // one per persona, aligned with secPersonas order
)

// headerLen is magic + version; trailerLen is the CRC.
const (
	headerLen  = len(snapMagic) + 2
	trailerLen = 4
)

// decodes counts snapshot decode operations process-wide: every
// DecodeResult call and every SnapshotView materialization that actually
// touched section bytes. The server's warm read paths (decoded-snapshot
// cache hits, If-None-Match 304s) are required to leave it untouched —
// the decode-counter tests pin exactly that.
var decodes atomic.Uint64

// Decodes returns the process-wide snapshot decode count.
func Decodes() uint64 { return decodes.Load() }

// Hash returns the content hash of an encoded snapshot: hex SHA-256 over
// the full encoding. Identical audit results hash identically no matter
// when or where they were serialized.
func Hash(encoded []byte) string {
	sum := sha256.Sum256(encoded)
	return hex.EncodeToString(sum[:])
}

// sortedPersonas returns a result's personas ordered by name, not by
// registry ID: ID assignment depends on registration order, which varies
// across processes (e.g. -persona flags passed in a different order), and
// the content hash must not.
func sortedPersonas(r *core.ServiceResult) []flows.Persona {
	personas := r.Personas()
	sort.Slice(personas, func(i, j int) bool {
		return personas[i].Info().Name < personas[j].Info().Name
	})
	return personas
}

// uvarintLen returns the encoded size of v as a uvarint.
func uvarintLen(v uint64) int {
	return (bits.Len64(v|1) + 6) / 7
}

// EncodeResult serializes a service result as a versioned snapshot. Every
// intermediate section buffer comes from the wire scratch pools; only the
// returned encoding is freshly allocated, sized exactly, so the caller can
// hold it indefinitely without pinning pooled memory.
func EncodeResult(r *core.ServiceResult) []byte {
	personas := sortedPersonas(r)

	meta := wire.GetWriter()
	defer wire.PutWriter(meta)
	writeMetaSection(meta, r)

	pers := wire.GetWriter()
	defer wire.PutWriter(pers)
	pers.Int(len(personas))
	for _, p := range personas {
		writePersonaInfo(pers, p.Info())
	}

	// Flow symbol tables shared across the per-persona sets, then the sets
	// themselves — columnar, one section each, aligned with the persona
	// list above.
	enc := flows.NewSetEncoder()
	for _, p := range personas {
		enc.Collect(r.ByTrace[p])
	}
	tables := wire.GetWriter()
	defer wire.PutWriter(tables)
	enc.WriteTables(tables)

	secs := []wire.Section{
		{Kind: secMeta, Data: meta.Bytes()},
		{Kind: secPersonas, Data: pers.Bytes()},
		{Kind: secSymbols, Data: tables.Bytes()},
	}
	setWriters := make([]*wire.Writer, 0, len(personas))
	defer func() {
		for _, sw := range setWriters {
			wire.PutWriter(sw)
		}
	}()
	for _, p := range personas {
		sw := wire.GetWriter()
		setWriters = append(setWriters, sw)
		enc.WriteSetColumnar(sw, r.ByTrace[p])
		secs = append(secs, wire.Section{Kind: secFlowSet, Data: sw.Bytes()})
	}

	// The final size is known exactly: header, directory, bodies, CRC.
	// One right-sized allocation instead of an append doubling walk.
	total := headerLen + uvarintLen(uint64(len(secs))) + trailerLen
	for _, s := range secs {
		total += 1 + uvarintLen(uint64(len(s.Data))) + len(s.Data)
	}
	w := &wire.Writer{}
	w.Grow(total)
	w.Raw([]byte(snapMagic))
	var ver [2]byte
	binary.LittleEndian.PutUint16(ver[:], SnapshotVersion)
	w.Raw(ver[:])
	wire.WriteSections(w, secs)

	// Trailer CRC over everything so far.
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(w.Bytes()))
	w.Raw(crc[:])
	return w.Bytes()
}

// checkSnapshot validates the envelope every snapshot read shares — magic,
// version gate, CRC — and returns the version and payload. This is the
// one full pass over the bytes a lazy view performs; everything after it
// is on-demand.
func checkSnapshot(data []byte) (version uint16, payload []byte, err error) {
	if len(data) < headerLen+trailerLen {
		return 0, nil, fmt.Errorf("store: snapshot too short (%d bytes)", len(data))
	}
	if string(data[:len(snapMagic)]) != snapMagic {
		return 0, nil, fmt.Errorf("store: not a snapshot (bad magic %q)", data[:len(snapMagic)])
	}
	version = binary.LittleEndian.Uint16(data[len(snapMagic):headerLen])
	if version == 0 || version > SnapshotVersion {
		return 0, nil, fmt.Errorf("store: snapshot version %d not supported (this build reads up to %d)", version, SnapshotVersion)
	}
	body, trailer := data[:len(data)-trailerLen], data[len(data)-trailerLen:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(trailer); got != want {
		return 0, nil, fmt.Errorf("store: snapshot checksum mismatch (corrupted or truncated)")
	}
	return version, body[headerLen:], nil
}

// DecodeResult parses a snapshot back into a service result. Personas the
// snapshot references are registered into the process-wide registry
// (idempotently); a snapshot persona conflicting with an already-registered
// one of the same name is an error. Current (columnar, v3), v2, and v1
// snapshots all decode.
func DecodeResult(data []byte) (*core.ServiceResult, error) {
	version, payload, err := checkSnapshot(data)
	if err != nil {
		return nil, err
	}
	decodes.Add(1)
	if version == 1 {
		return decodeV1(payload)
	}
	secs, err := splitSections(version, payload)
	if err != nil {
		return nil, err
	}
	return secs.materialize(nil)
}

// snapSections is a parsed v2/v3 section directory: zero-copy slices into
// the payload, one per section, ready for independent decoding. The
// version picks the flow-set decoder (interleaved rows vs columns).
type snapSections struct {
	version  uint16
	meta     []byte
	personas []byte
	symbols  []byte
	flowSets [][]byte
}

// splitSections parses the sectioned directory and checks the section
// shape: the three fixed sections in canonical order, then one flow-set
// section per persona. Unknown trailing kinds are rejected — the CRC
// already proved the bytes are what the writer wrote, so an unknown kind
// means a format this build does not speak (the version gate should have
// caught it).
func splitSections(version uint16, payload []byte) (*snapSections, error) {
	all, err := wire.ReadSections(wire.NewReader(payload))
	if err != nil {
		return nil, fmt.Errorf("store: snapshot sections: %w", err)
	}
	if len(all) < 3 || all[0].Kind != secMeta || all[1].Kind != secPersonas || all[2].Kind != secSymbols {
		return nil, fmt.Errorf("store: snapshot missing canonical sections")
	}
	s := &snapSections{version: version, meta: all[0].Data, personas: all[1].Data, symbols: all[2].Data}
	for _, sec := range all[3:] {
		if sec.Kind != secFlowSet {
			return nil, fmt.Errorf("store: unexpected snapshot section kind %d", sec.Kind)
		}
		s.flowSets = append(s.flowSets, sec.Data)
	}
	return s, nil
}

// decodeFlowSet decodes one flow-set section body in this snapshot's
// format: columnar from version 3, interleaved rows before.
func (s *snapSections) decodeFlowSet(dec *flows.SetDecoder, data []byte) (*flows.Set, error) {
	if s.version >= 3 {
		return dec.DecodeSetColumnar(data)
	}
	return dec.DecodeSetBytes(data)
}

// maxSectionDecoders bounds the pool that decodes persona flow sections
// concurrently. Snapshots carry a handful of personas (the paper's corpus
// has three), so a small pool captures all the available parallelism
// without letting one wide materialization flood the scheduler while the
// server is already running one goroutine per request.
const maxSectionDecoders = 4

// decodeFlowSetsInto decodes the selected persona flow sections into
// res.ByTrace. With two or more sections selected the decodes run
// concurrently on a bounded pool — safe because the SetDecoder's symbol
// tables are read-only after ReadSetTables, each decode builds its own
// Set, and the wire scratch pools are sync.Pool-backed. Results merge in
// canonical persona (section) order, and the first error in that order
// wins, so outputs and errors are identical to the sequential loop.
func (s *snapSections) decodeFlowSetsInto(dec *flows.SetDecoder, personas []flows.Persona, keep map[flows.Persona]bool, res *core.ServiceResult) error {
	idx := make([]int, 0, len(personas))
	for i, p := range personas {
		if keep != nil && !keep[p] {
			continue
		}
		idx = append(idx, i)
	}
	if len(idx) < 2 {
		for _, i := range idx {
			set, err := s.decodeFlowSet(dec, s.flowSets[i])
			if err != nil {
				return fmt.Errorf("store: snapshot flow set for %s: %w", personas[i], err)
			}
			res.ByTrace[personas[i]] = set
		}
		return nil
	}
	sets := make([]*flows.Set, len(idx))
	errs := make([]error, len(idx))
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < min(maxSectionDecoders, len(idx)); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := range work {
				i := idx[k]
				set, err := s.decodeFlowSet(dec, s.flowSets[i])
				if err != nil {
					errs[k] = fmt.Errorf("store: snapshot flow set for %s: %w", personas[i], err)
					continue
				}
				sets[k] = set
			}
		}()
	}
	for k := range idx {
		work <- k
	}
	close(work)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	for k, i := range idx {
		res.ByTrace[personas[i]] = sets[k]
	}
	return nil
}

// decodeMetaSection parses identity, counters, and the dataset string sets
// into a result with no flow sets yet.
func decodeMetaSection(data []byte) (*core.ServiceResult, error) {
	r := wire.NewReader(data)
	res := &core.ServiceResult{
		Identity: core.ServiceIdentity{
			Name:  r.String(),
			Owner: r.String(),
		},
		ByTrace: make(map[flows.Persona]*flows.Set),
	}
	nESLDs := r.Count(1)
	for i := 0; i < nESLDs; i++ {
		res.Identity.FirstPartyESLDs = append(res.Identity.FirstPartyESLDs, r.String())
	}
	res.Packets = r.Int()
	res.TCPFlows = r.Int()
	res.DroppedKeys = r.Int()
	res.Domains = readStringSet(r)
	res.ESLDs = readStringSet(r)
	res.RawKeys = readStringSet(r)
	if err := r.Close(); err != nil {
		return nil, fmt.Errorf("store: snapshot meta section: %w", err)
	}
	return res, nil
}

// decodePersonaSection parses and registers the snapshot's personas,
// returning them in section (name) order — the order the flow-set
// sections follow.
func decodePersonaSection(data []byte) ([]flows.Persona, error) {
	r := wire.NewReader(data)
	nPersonas := r.Count(1)
	personas := make([]flows.Persona, 0, nPersonas)
	for i := 0; i < nPersonas; i++ {
		info, err := readPersonaInfo(r)
		if err != nil {
			return nil, err
		}
		p, err := flows.RegisterPersona(info)
		if err != nil {
			return nil, fmt.Errorf("store: snapshot persona %q: %w", info.Name, err)
		}
		personas = append(personas, p)
	}
	if err := r.Close(); err != nil {
		return nil, fmt.Errorf("store: snapshot persona section: %w", err)
	}
	return personas, nil
}

// decodeSymbolSection parses the shared flow symbol tables.
func decodeSymbolSection(data []byte) (*flows.SetDecoder, error) {
	r := wire.NewReader(data)
	dec, err := flows.ReadSetTables(r)
	if err != nil {
		return nil, fmt.Errorf("store: snapshot symbol tables: %w", err)
	}
	if err := r.Close(); err != nil {
		return nil, fmt.Errorf("store: snapshot symbol tables: %w", err)
	}
	return dec, nil
}

// materialize decodes the sections into a result. A non-nil only set
// restricts which personas' flow sections are decoded at all — the
// sections of personas outside the filter are never touched, which is the
// partial-materialization fast path /v1/diff uses.
func (s *snapSections) materialize(only map[flows.Persona]bool) (*core.ServiceResult, error) {
	res, err := decodeMetaSection(s.meta)
	if err != nil {
		return nil, err
	}
	personas, err := decodePersonaSection(s.personas)
	if err != nil {
		return nil, err
	}
	if len(personas) != len(s.flowSets) {
		return nil, fmt.Errorf("store: snapshot has %d personas but %d flow sections", len(personas), len(s.flowSets))
	}
	dec, err := decodeSymbolSection(s.symbols)
	if err != nil {
		return nil, err
	}
	if err := s.decodeFlowSetsInto(dec, personas, only, res); err != nil {
		return nil, err
	}
	return res, nil
}

// decodeV1 parses the unframed version-1 payload — the PR-5 layout, kept
// so stores written before the section framing still serve.
func decodeV1(payload []byte) (*core.ServiceResult, error) {
	r := wire.NewReader(payload)
	res := &core.ServiceResult{
		Identity: core.ServiceIdentity{
			Name:  r.String(),
			Owner: r.String(),
		},
		ByTrace: make(map[flows.Persona]*flows.Set),
	}
	nESLDs := r.Count(1)
	for i := 0; i < nESLDs; i++ {
		res.Identity.FirstPartyESLDs = append(res.Identity.FirstPartyESLDs, r.String())
	}

	res.Packets = r.Int()
	res.TCPFlows = r.Int()
	res.DroppedKeys = r.Int()

	res.Domains = readStringSet(r)
	res.ESLDs = readStringSet(r)
	res.RawKeys = readStringSet(r)

	nPersonas := r.Count(1)
	personas := make([]flows.Persona, 0, nPersonas)
	for i := 0; i < nPersonas; i++ {
		info, err := readPersonaInfo(r)
		if err != nil {
			return nil, err
		}
		p, err := flows.RegisterPersona(info)
		if err != nil {
			return nil, fmt.Errorf("store: snapshot persona %q: %w", info.Name, err)
		}
		personas = append(personas, p)
	}

	dec, err := flows.ReadSetTables(r)
	if err != nil {
		return nil, fmt.Errorf("store: snapshot symbol tables: %w", err)
	}
	for _, p := range personas {
		set, err := dec.ReadSet(r)
		if err != nil {
			return nil, fmt.Errorf("store: snapshot flow set for %s: %w", p, err)
		}
		res.ByTrace[p] = set
	}

	if err := r.Close(); err != nil {
		return nil, fmt.Errorf("store: snapshot payload: %w", err)
	}
	return res, nil
}

// writeMetaSection writes identity, counters, and the dataset-level string
// sets (sorted for canonical output).
func writeMetaSection(w *wire.Writer, r *core.ServiceResult) {
	w.String(r.Identity.Name)
	w.String(r.Identity.Owner)
	w.Int(len(r.Identity.FirstPartyESLDs))
	for _, e := range r.Identity.FirstPartyESLDs {
		w.String(e)
	}
	w.Int(r.Packets)
	w.Int(r.TCPFlows)
	w.Int(r.DroppedKeys)
	writeStringSet(w, r.Domains)
	writeStringSet(w, r.ESLDs)
	writeStringSet(w, r.RawKeys)
}

// writeStringSet writes a set-valued map as a sorted string list.
func writeStringSet(w *wire.Writer, set map[string]bool) {
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.Int(len(keys))
	for _, k := range keys {
		w.String(k)
	}
}

// readStringSet reads a string list back into a set-valued map.
func readStringSet(r *wire.Reader) map[string]bool {
	n := r.Count(1)
	set := make(map[string]bool, n)
	for i := 0; i < n; i++ {
		if s := r.String(); r.Err() == nil {
			set[s] = true
		}
	}
	return set
}

// writePersonaInfo writes one persona registration record.
func writePersonaInfo(w *wire.Writer, info flows.PersonaInfo) {
	w.String(info.Name)
	w.Int(len(info.Aliases))
	for _, a := range info.Aliases {
		w.String(a)
	}
	w.Bool(info.AgeKnown)
	w.Int(info.AgeMin)
	w.Int(info.AgeMax)
	w.Bool(info.LoggedIn)
	w.String(info.Subject)
	keys := make([]string, 0, len(info.Attrs))
	for k := range info.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.Int(len(keys))
	for _, k := range keys {
		w.String(k)
		w.String(info.Attrs[k])
	}
}

// readPersonaInfo reads one persona registration record.
func readPersonaInfo(r *wire.Reader) (flows.PersonaInfo, error) {
	var info flows.PersonaInfo
	info.Name = r.String()
	nAliases := r.Count(1)
	for i := 0; i < nAliases; i++ {
		info.Aliases = append(info.Aliases, r.String())
	}
	info.AgeKnown = r.Bool()
	info.AgeMin = r.Int()
	info.AgeMax = r.Int()
	info.LoggedIn = r.Bool()
	info.Subject = r.String()
	nAttrs := r.Count(2)
	if nAttrs > 0 {
		info.Attrs = make(map[string]string, nAttrs)
		for i := 0; i < nAttrs; i++ {
			k := r.String()
			v := r.String()
			if r.Err() == nil {
				info.Attrs[k] = v
			}
		}
	}
	if err := r.Err(); err != nil {
		return info, err
	}
	if info.Name == "" {
		return info, fmt.Errorf("store: snapshot persona with empty name")
	}
	if info.AgeKnown && info.AgeMin > info.AgeMax {
		return info, fmt.Errorf("store: snapshot persona %q has inverted age bracket", info.Name)
	}
	return info, nil
}
