package store

import (
	"bytes"
	"encoding/binary"
	"testing"

	"diffaudit/internal/core"
	"diffaudit/internal/flows"
	"diffaudit/internal/synth"
)

// FuzzDecodeResult is the snapshot codec's robustness harness: DecodeResult
// must never panic, whatever the input — it either returns a result or a
// clean error. When it does decode, the result must re-encode and decode
// again (the codec accepts its own output). Run with:
//
//	go test -fuzz FuzzDecodeResult ./internal/store
//
// Seed corpus: testdata/fuzz/FuzzDecodeResult holds committed seeds (a
// valid snapshot, header fragments, junk); the f.Add seeds below regenerate
// richer live encodings each run.
func FuzzDecodeResult(f *testing.F) {
	ds := synth.Generate(synth.Config{Scale: 0.005})
	pipe := core.NewPipeline()
	var enc []byte
	for _, name := range []string{"Quizlet", "TikTok"} {
		st := ds.Service(name)
		res := pipe.AnalyzeRecords(st.Identity(), st.Records())
		enc = EncodeResult(res)
		f.Add(enc)
		f.Add(enc[:len(enc)/2])                // truncated
		f.Add(append([]byte(nil), enc[8:]...)) // headerless tail
	}
	corrupted := append([]byte(nil), enc...)
	corrupted[len(corrupted)/2] ^= 0xa5
	f.Add(corrupted)
	// Columnar-section seeds: payload mutations with a refreshed CRC reach
	// the v3 column decoders (count mismatches, bad indices, bad masks)
	// instead of dying at the envelope.
	for _, off := range []int{len(enc) / 2, len(enc) * 3 / 4, len(enc) - trailerLen - 1} {
		deep := refreshCRC(append([]byte(nil), enc...))
		deep[off] ^= 0x11
		f.Add(refreshCRC(deep))
	}
	// The previous interleaved-row format must keep decoding too.
	st := ds.Service("Quizlet")
	resV2 := pipe.AnalyzeRecords(st.Identity(), st.Records())
	v2 := encodeV2(resV2)
	f.Add(v2)
	f.Add(v2[:len(v2)*2/3])
	f.Add([]byte(snapMagic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		res, err := DecodeResult(data)
		if err != nil {
			return
		}
		// Accepted input must round-trip through the canonical encoding.
		reenc := EncodeResult(res)
		res2, err := DecodeResult(reenc)
		if err != nil {
			t.Fatalf("re-decode of accepted snapshot failed: %v", err)
		}
		if !bytes.Equal(EncodeResult(res2), reenc) {
			t.Fatal("accepted snapshot is not canonical")
		}
	})
}

// FuzzDecodeVersioned drives structured mutations through the header so
// the version gate keeps rejecting cleanly.
func FuzzDecodeVersioned(f *testing.F) {
	res := core.NewPipeline().AnalyzeRecords(
		core.ServiceIdentity{Name: "fuzz-svc", FirstPartyESLDs: []string{"fuzz.example"}},
		nil)
	if res.ByTrace[flows.Child] == nil {
		f.Fatal("pipeline produced no built-in traces")
	}
	enc := EncodeResult(res)
	f.Add(uint16(SnapshotVersion), enc[6:])
	f.Add(uint16(SnapshotVersion+1), enc[6:])
	f.Add(uint16(0), []byte{})

	f.Fuzz(func(t *testing.T, version uint16, payload []byte) {
		data := make([]byte, 0, 6+len(payload))
		data = append(data, snapMagic...)
		data = binary.LittleEndian.AppendUint16(data, version)
		data = append(data, payload...)
		res, err := DecodeResult(data)
		if version > SnapshotVersion && err == nil {
			t.Fatalf("accepted future version %d", version)
		}
		if err == nil && res == nil {
			t.Fatal("nil result without error")
		}
	})
}
