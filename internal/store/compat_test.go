package store

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"reflect"
	"testing"

	"diffaudit/internal/core"
	"diffaudit/internal/flows"
	"diffaudit/internal/linkability"
	"diffaudit/internal/report"
	"diffaudit/internal/synth"
	"diffaudit/internal/wire"
)

// encodeV2 reproduces the version-2 codec (sectioned framing, interleaved
// row flow sets) the way encodeV1 reproduces PR 5's — test-only, so the
// compat matrix can exercise real old-format bytes forever.
func encodeV2(r *core.ServiceResult) []byte {
	personas := sortedPersonas(r)

	meta := &wire.Writer{}
	writeMetaSection(meta, r)

	pers := &wire.Writer{}
	pers.Int(len(personas))
	for _, p := range personas {
		writePersonaInfo(pers, p.Info())
	}

	enc := flows.NewSetEncoder()
	for _, p := range personas {
		enc.Collect(r.ByTrace[p])
	}
	tables := &wire.Writer{}
	enc.WriteTables(tables)

	secs := []wire.Section{
		{Kind: secMeta, Data: meta.Bytes()},
		{Kind: secPersonas, Data: pers.Bytes()},
		{Kind: secSymbols, Data: tables.Bytes()},
	}
	for _, p := range personas {
		sw := &wire.Writer{}
		enc.WriteSet(sw, r.ByTrace[p])
		secs = append(secs, wire.Section{Kind: secFlowSet, Data: sw.Bytes()})
	}

	w := &wire.Writer{}
	w.Raw([]byte(snapMagic))
	var ver [2]byte
	binary.LittleEndian.PutUint16(ver[:], 2)
	w.Raw(ver[:])
	wire.WriteSections(w, secs)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(w.Bytes()))
	w.Raw(crc[:])
	return w.Bytes()
}

// refreshCRC recomputes the trailer CRC so payload mutations reach the
// decoder instead of dying at the envelope check.
func refreshCRC(data []byte) []byte {
	body := data[:len(data)-trailerLen]
	binary.LittleEndian.PutUint32(data[len(data)-trailerLen:], crc32.ChecksumIEEE(body))
	return data
}

// versionEncodings returns the same audit encoded by every codec version
// this build must read.
func versionEncodings(r *core.ServiceResult) map[string][]byte {
	return map[string][]byte{
		"v1": encodeV1(r),
		"v2": encodeV2(r),
		"v3": EncodeResult(r),
	}
}

// TestCompatMatrix is the cross-version decode matrix: v1, v2, and v3
// bytes of the same audit must decode to results that re-encode to the
// identical canonical v3 encoding, materialize partially through views,
// and answer grid queries identically.
func TestCompatMatrix(t *testing.T) {
	res := auditOne(t, "Quizlet")
	canonical := EncodeResult(res)
	childGrid := res.ByTrace[flows.Child].GroupGrid()

	for name, enc := range versionEncodings(res) {
		dec, err := DecodeResult(enc)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if !bytes.Equal(EncodeResult(dec), canonical) {
			t.Errorf("%s: decode does not re-encode to the canonical v3 bytes", name)
		}

		view, err := NewSnapshotView(enc, Meta{Hash: Hash(enc)}, nil)
		if err != nil {
			t.Fatalf("%s: view: %v", name, err)
		}
		partial, err := view.PartialResult([]string{"child"})
		if err != nil {
			t.Fatalf("%s: partial: %v", name, err)
		}
		if len(partial.ByTrace) != 1 || partial.ByTrace[flows.Child] == nil {
			t.Fatalf("%s: partial materialized %d personas", name, len(partial.ByTrace))
		}
		if !reflect.DeepEqual(partial.ByTrace[flows.Child].GroupGrid(), childGrid) {
			t.Errorf("%s: partial child grid differs", name)
		}

		grid, err := view.PersonaGrid("child")
		if err != nil {
			t.Fatalf("%s: PersonaGrid: %v", name, err)
		}
		if !reflect.DeepEqual(grid, childGrid) {
			t.Errorf("%s: PersonaGrid differs from GroupGrid", name)
		}
		if _, err := view.PersonaGrid("no-such-persona"); err == nil {
			t.Errorf("%s: PersonaGrid accepted unknown persona", name)
		}

		ix, err := view.PersonaLinkability("child")
		if err != nil {
			t.Fatalf("%s: PersonaLinkability: %v", name, err)
		}
		wantIx := linkability.NewIndex(res.ByTrace[flows.Child])
		if ix.CountLinkable() != wantIx.CountLinkable() {
			t.Errorf("%s: columnar CountLinkable = %d, want %d", name, ix.CountLinkable(), wantIx.CountLinkable())
		}
		if !reflect.DeepEqual(ix.Parties(), wantIx.Parties()) {
			t.Errorf("%s: columnar linkability parties differ", name)
		}
		view.Close()
	}
}

// TestCrossVersionDiffByteIdentity pins the acceptance criterion that
// longitudinal diffs render byte-identically no matter which codec version
// either endpoint was stored with.
func TestCrossVersionDiffByteIdentity(t *testing.T) {
	from := auditOne(t, "Quizlet")
	to := auditOne(t, "TikTok")
	want, err := report.ExportDiffJSON(core.Longitudinal(from, to))
	if err != nil {
		t.Fatal(err)
	}

	fromEncs, toEncs := versionEncodings(from), versionEncodings(to)
	for fromVer, fe := range fromEncs {
		for toVer, te := range toEncs {
			df, err := DecodeResult(fe)
			if err != nil {
				t.Fatal(err)
			}
			dt, err := DecodeResult(te)
			if err != nil {
				t.Fatal(err)
			}
			got, err := report.ExportDiffJSON(core.Longitudinal(df, dt))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("diff %s→%s is not byte-identical to the direct diff", fromVer, toVer)
			}
		}
	}
}

// TestColumnarSectionCorruption drives payload mutations (with a valid
// CRC, so they reach the columnar decoder) through the full snapshot
// decode path: every mutation must fail cleanly or decode to a canonical
// result, never panic.
func TestColumnarSectionCorruption(t *testing.T) {
	// A small audit keeps the mutation sweep fast — every offset still
	// lands somewhere in the columnar sections.
	ds := synth.Generate(synth.Config{Scale: 0.002})
	st := ds.Service("Quizlet")
	res := core.NewPipeline().AnalyzeRecords(st.Identity(), st.Records())
	enc := EncodeResult(res)
	// Mutate bytes across the back half, where the flow columns live. The
	// stride samples ~256 offsets so the sweep stays fast as encodings
	// grow; the fuzz harness covers the exhaustive walk.
	stride := (len(enc)/2 - trailerLen) / 256
	if stride < 1 {
		stride = 1
	}
	for off := len(enc) / 2; off < len(enc)-trailerLen; off += stride {
		bad := refreshCRC(append([]byte(nil), enc...))
		bad[off] ^= 0xa5
		bad = refreshCRC(bad)
		dec, err := DecodeResult(bad)
		if err != nil {
			continue
		}
		if dec == nil {
			t.Fatalf("offset %d: decoder returned nil result without error", off)
		}
		// A mutation that still decodes (e.g. a surviving mask bit flip)
		// must yield a result the canonical encoder accepts.
		EncodeResult(dec)
	}
}

// TestViewDecodeStateCached pins the satellite fix: repeated partial
// materializations share one persona/symbol index instead of re-deriving
// it per call, and every call still reports exactly one decode.
func TestViewDecodeStateCached(t *testing.T) {
	res := auditOne(t, "Quizlet")
	enc := EncodeResult(res)
	view, err := NewSnapshotView(enc, Meta{Hash: Hash(enc)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer view.Close()

	before := Decodes()
	first, err := view.PartialResult([]string{"child"})
	if err != nil {
		t.Fatal(err)
	}
	second, err := view.PartialResult([]string{"child"})
	if err != nil {
		t.Fatal(err)
	}
	if got := Decodes() - before; got != 2 {
		t.Errorf("two partial materializations counted %d decodes", got)
	}
	if !reflect.DeepEqual(
		first.ByTrace[flows.Child].GroupGrid(),
		second.ByTrace[flows.Child].GroupGrid()) {
		t.Error("cached index changed the materialized result")
	}

	// Grid queries share the cache and count decodes too.
	if _, err := view.PersonaGrid("child"); err != nil {
		t.Fatal(err)
	}
	if got := Decodes() - before; got != 3 {
		t.Errorf("grid query after partials counted %d decodes total", got)
	}
}
