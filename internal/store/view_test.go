package store

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"

	"diffaudit/internal/core"
	"diffaudit/internal/flows"
	"diffaudit/internal/report"
	"diffaudit/internal/wire"
)

// encodeV1 reproduces the version-1 (PR 5) snapshot layout — one unframed
// payload stream — so compatibility can be tested even though the writer
// only emits version 2 now. Field order matches decodeV1 exactly.
func encodeV1(r *core.ServiceResult) []byte {
	personas := sortedPersonas(r)

	w := &wire.Writer{}
	w.Raw([]byte(snapMagic))
	var ver [2]byte
	binary.LittleEndian.PutUint16(ver[:], 1)
	w.Raw(ver[:])

	writeMetaSection(w, r)
	w.Int(len(personas))
	for _, p := range personas {
		writePersonaInfo(w, p.Info())
	}
	enc := flows.NewSetEncoder()
	for _, p := range personas {
		enc.Collect(r.ByTrace[p])
	}
	enc.WriteTables(w)
	for _, p := range personas {
		enc.WriteSet(w, r.ByTrace[p])
	}

	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(w.Bytes()))
	w.Raw(crc[:])
	return w.Bytes()
}

// TestDecodeV1Compat pins the backward-compatibility guarantee: snapshots
// written by the version-1 codec (PR 5/6 stores) still decode, and the
// decoded result is indistinguishable from a current-format decode of the
// same audit (canonical re-encoding matches byte for byte).
func TestDecodeV1Compat(t *testing.T) {
	res := auditOne(t, "Quizlet")
	v1 := encodeV1(res)

	dec, err := DecodeResult(v1)
	if err != nil {
		t.Fatalf("v1 snapshot no longer decodes: %v", err)
	}
	if !bytes.Equal(EncodeResult(dec), EncodeResult(res)) {
		t.Error("v1 decode does not re-encode to the same canonical bytes")
	}

	// Lazy views open v1 bytes too (all-or-nothing materialization).
	view, err := NewSnapshotView(v1, Meta{Hash: Hash(v1)}, nil)
	if err != nil {
		t.Fatalf("view over v1 snapshot: %v", err)
	}
	defer view.Close()
	if view.Version() != 1 {
		t.Fatalf("view version = %d, want 1", view.Version())
	}
	lazy, err := view.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(EncodeResult(lazy), EncodeResult(res)) {
		t.Error("v1 view materialization differs from the original result")
	}
}

// TestViewEquivalence proves the lazy read path is indistinguishable from
// eager decode: every artifact rendered from a view-materialized result
// is byte-identical to one rendered from DecodeResult.
func TestViewEquivalence(t *testing.T) {
	res := auditOne(t, "Duolingo")
	enc := EncodeResult(res)

	eager, err := DecodeResult(enc)
	if err != nil {
		t.Fatal(err)
	}
	view, err := NewSnapshotView(enc, Meta{Hash: Hash(enc)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer view.Close()
	lazy, err := view.Result()
	if err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(EncodeResult(lazy), EncodeResult(eager)) {
		t.Fatal("lazy materialization re-encodes differently from eager decode")
	}
	wantJSON, err := report.ExportJSON([]*core.ServiceResult{eager})
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := report.ExportJSON([]*core.ServiceResult{lazy})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Error("ExportJSON differs between lazy and eager decode")
	}
	if report.AuditReport(lazy) != report.AuditReport(eager) {
		t.Error("AuditReport differs between lazy and eager decode")
	}
}

// TestViewPartialMaterialization checks the seekable-section contract: a
// persona-filtered materialization yields exactly the selected personas'
// flow sets (identical to the full decode's), leaves the others absent,
// and keeps all snapshot-level fields intact.
func TestViewPartialMaterialization(t *testing.T) {
	res := auditOne(t, "TikTok")
	enc := EncodeResult(res)

	full, err := DecodeResult(enc)
	if err != nil {
		t.Fatal(err)
	}
	view, err := NewSnapshotView(enc, Meta{Hash: Hash(enc)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer view.Close()

	part, err := view.PartialResult([]string{"child", "adult"})
	if err != nil {
		t.Fatal(err)
	}
	if len(part.ByTrace) != 2 {
		t.Fatalf("partial result has %d personas, want 2 (%v)", len(part.ByTrace), part.ByTrace)
	}
	for _, p := range []flows.Persona{flows.Child, flows.Adult} {
		got, want := part.ByTrace[p], full.ByTrace[p]
		if got == nil || want == nil {
			t.Fatalf("persona %s missing (partial=%v full=%v)", p, got != nil, want != nil)
		}
		if got.Len() != want.Len() {
			t.Errorf("persona %s: partial set has %d flows, full has %d", p, got.Len(), want.Len())
		}
	}
	if part.ByTrace[flows.Adolescent] != nil || part.ByTrace[flows.LoggedOut] != nil {
		t.Error("partial materialization decoded unselected personas")
	}
	if part.Identity.Name != full.Identity.Name || part.Packets != full.Packets {
		t.Error("partial materialization lost snapshot-level fields")
	}

	// A nil filter materializes everything, same as Result.
	all, err := view.PartialResult(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(EncodeResult(all), enc) {
		t.Error("nil-filter materialization is not canonical")
	}

	// An unknown persona name selects nothing rather than failing: the
	// caller's filter may be about personas this snapshot never saw.
	none, err := view.PartialResult([]string{"no-such-persona"})
	if err != nil {
		t.Fatal(err)
	}
	if len(none.ByTrace) != 0 {
		t.Errorf("unknown persona filter materialized %d personas", len(none.ByTrace))
	}
}

// TestStoreViewers checks both backends' View path end to end: resolve by
// any reference, materialize, match the Put result — and count decodes
// honestly.
func TestStoreViewers(t *testing.T) {
	res := auditOne(t, "Roblox")
	for _, tc := range []struct {
		name string
		s    Store
	}{
		{"MemStore", NewMemStore()},
		{"FSStore", func() Store {
			fs, err := OpenFSStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return fs
		}()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			meta, err := tc.s.Put("job-1", res)
			if err != nil {
				t.Fatal(err)
			}
			viewer, okViewer := tc.s.(Viewer)
			if !okViewer {
				t.Fatalf("%T does not implement Viewer", tc.s)
			}
			for _, ref := range []string{"1", meta.Hash, meta.Hash[:8], "job-1"} {
				before := Decodes()
				view, err := viewer.View(ref)
				if err != nil {
					t.Fatalf("View(%q): %v", ref, err)
				}
				if view.Meta().Hash != meta.Hash {
					t.Errorf("View(%q) meta hash = %s, want %s", ref, view.Meta().Hash, meta.Hash)
				}
				// Opening is validation only — no decode yet.
				if Decodes() != before {
					t.Errorf("View(%q) performed %d decodes before materialization", ref, Decodes()-before)
				}
				got, err := view.Result()
				if err != nil {
					t.Fatal(err)
				}
				if Decodes() != before+1 {
					t.Errorf("materialization counted %d decodes, want 1", Decodes()-before)
				}
				if !bytes.Equal(EncodeResult(got), EncodeResult(res)) {
					t.Errorf("View(%q) result differs from the stored one", ref)
				}
				if err := view.Close(); err != nil {
					t.Errorf("Close: %v", err)
				}
				if _, err := view.Result(); err == nil {
					t.Error("materializing a closed view succeeded")
				}
			}
			if _, err := viewer.View("no-such-ref"); err == nil {
				t.Error("View of an unknown reference succeeded")
			}
		})
	}
}

// TestViewRejectsCorruption mirrors the decoder's corruption tests on the
// view path: the one-time envelope validation catches damage at open.
func TestViewRejectsCorruption(t *testing.T) {
	res := auditOne(t, "Quizlet")
	enc := EncodeResult(res)

	flipped := append([]byte(nil), enc...)
	flipped[len(flipped)/2] ^= 0xFF
	if _, err := NewSnapshotView(flipped, Meta{}, nil); err == nil {
		t.Error("view opened over corrupted bytes")
	}
	if _, err := NewSnapshotView(enc[:headerLen+2], Meta{}, nil); err == nil {
		t.Error("view opened over truncated bytes")
	}
	closed := false
	if _, err := NewSnapshotView([]byte("not a snapshot at all"), Meta{}, func() error {
		closed = true
		return nil
	}); err == nil {
		t.Error("view opened over junk")
	} else if !closed {
		t.Error("failed open leaked the closer")
	}
}
