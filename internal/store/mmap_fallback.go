//go:build !unix

package store

import "os"

// mapFile reads a snapshot file whole on platforms without a usable mmap
// path. The contract matches the unix version: bytes plus a closer (a
// no-op here — the garbage collector owns the buffer).
func mapFile(path string) ([]byte, func() error, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return raw, func() error { return nil }, nil
}
