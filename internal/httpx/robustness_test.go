package httpx

import (
	"math/rand"
	"testing"
)

// TestParseStreamNeverPanics fuzzes the HTTP parser.
func TestParseStreamNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	valid := []byte("POST /v1 HTTP/1.1\r\nHost: x\r\nTransfer-Encoding: chunked\r\n\r\n4\r\nWiki\r\n0\r\n\r\n")
	for i := 0; i < 800; i++ {
		var data []byte
		if i%2 == 0 {
			data = make([]byte, rng.Intn(150))
			rng.Read(data)
		} else {
			data = append([]byte(nil), valid...)
			data[rng.Intn(len(data))] ^= byte(1 + rng.Intn(255))
			data = data[:rng.Intn(len(data)+1)]
		}
		_, _ = ParseStream(data)
	}
}
