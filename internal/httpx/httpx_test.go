package httpx

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseSimpleGet(t *testing.T) {
	stream := []byte("GET /search?q=math HTTP/1.1\r\nHost: quizlet.com\r\nUser-Agent: test\r\n\r\n")
	reqs, err := ParseStream(stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 1 {
		t.Fatalf("requests = %d", len(reqs))
	}
	r := reqs[0]
	if r.Method != "GET" || r.Target != "/search?q=math" || r.Proto != "HTTP/1.1" {
		t.Errorf("request line: %+v", r)
	}
	if r.Host() != "quizlet.com" {
		t.Errorf("host = %q", r.Host())
	}
	if r.URL() != "https://quizlet.com/search?q=math" {
		t.Errorf("url = %q", r.URL())
	}
}

func TestParsePostWithBody(t *testing.T) {
	body := `{"username":"kid1","age":12}`
	stream := []byte("POST /users HTTP/1.1\r\nHost: www.duolingo.com\r\nContent-Type: application/json\r\nContent-Length: " +
		itoa(len(body)) + "\r\n\r\n" + body)
	reqs, err := ParseStream(stream)
	if err != nil {
		t.Fatal(err)
	}
	if string(reqs[0].Body) != body {
		t.Errorf("body = %q", reqs[0].Body)
	}
}

func itoa(n int) string { return strings.TrimSpace(strings.Repeat("", 0)) + fmtInt(n) }

func fmtInt(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}

func TestParsePipelined(t *testing.T) {
	stream := []byte(
		"GET /a HTTP/1.1\r\nHost: x.com\r\n\r\n" +
			"POST /b HTTP/1.1\r\nHost: x.com\r\nContent-Length: 2\r\n\r\nhi" +
			"GET /c HTTP/1.1\r\nHost: x.com\r\n\r\n")
	reqs, err := ParseStream(stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 3 {
		t.Fatalf("requests = %d, want 3", len(reqs))
	}
	if reqs[1].Method != "POST" || string(reqs[1].Body) != "hi" {
		t.Errorf("middle request: %+v", reqs[1])
	}
	if reqs[2].Target != "/c" {
		t.Errorf("last target = %q", reqs[2].Target)
	}
}

func TestParseChunked(t *testing.T) {
	stream := []byte("POST /e HTTP/1.1\r\nHost: x\r\nTransfer-Encoding: chunked\r\n\r\n" +
		"4\r\nWiki\r\n5\r\npedia\r\n0\r\n\r\n" +
		"GET /after HTTP/1.1\r\nHost: x\r\n\r\n")
	reqs, err := ParseStream(stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 2 {
		t.Fatalf("requests = %d", len(reqs))
	}
	if string(reqs[0].Body) != "Wikipedia" {
		t.Errorf("chunked body = %q", reqs[0].Body)
	}
	if reqs[1].Target != "/after" {
		t.Error("request after chunked body lost")
	}
}

func TestParseChunkedWithExtensionAndTrailer(t *testing.T) {
	stream := []byte("POST /e HTTP/1.1\r\nHost: x\r\nTransfer-Encoding: chunked\r\n\r\n" +
		"3;ext=1\r\nabc\r\n0\r\nX-Trailer: v\r\n\r\n")
	reqs, err := ParseStream(stream)
	if err != nil {
		t.Fatal(err)
	}
	if string(reqs[0].Body) != "abc" {
		t.Errorf("body = %q", reqs[0].Body)
	}
}

func TestParseIncomplete(t *testing.T) {
	// Headers cut off.
	if _, err := ParseStream([]byte("GET / HTTP/1.1\r\nHost: x\r\n")); !errors.Is(err, ErrIncomplete) {
		t.Errorf("cut headers: %v", err)
	}
	// Body cut off after a complete request.
	stream := []byte("GET /a HTTP/1.1\r\nHost: x\r\n\r\nPOST /b HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort")
	reqs, err := ParseStream(stream)
	if !errors.Is(err, ErrIncomplete) {
		t.Errorf("err = %v", err)
	}
	if len(reqs) != 1 || reqs[0].Target != "/a" {
		t.Errorf("salvaged requests = %+v", reqs)
	}
}

func TestParseMalformed(t *testing.T) {
	for _, in := range []string{
		"NOTAMETHOD / HTTP/1.1\r\n\r\n",
		"GET /\r\n\r\n",
		"GET / HTTP/1.1\r\nBadHeaderNoColon\r\n\r\n",
		"\x16\x03\x03\x00\x05hello", // TLS bytes
	} {
		if _, err := ParseStream([]byte(in)); err == nil {
			t.Errorf("ParseStream(%q) succeeded", in)
		}
	}
}

func TestHeaderAccessors(t *testing.T) {
	r := &Request{Headers: []Header{
		{Name: "Host", Value: "Example.COM:443"},
		{Name: "Cookie", Value: "sid=abc; theme=dark; empty"},
		{Name: "X-Dup", Value: "first"},
		{Name: "x-dup", Value: "second"},
	}}
	if r.Host() != "example.com" {
		t.Errorf("host = %q", r.Host())
	}
	if r.Get("X-DUP") != "first" {
		t.Error("Get should return first match")
	}
	cookies := r.Cookies()
	if len(cookies) != 3 || cookies[0].Name != "sid" || cookies[0].Value != "abc" {
		t.Errorf("cookies = %+v", cookies)
	}
	if cookies[2].Name != "empty" || cookies[2].Value != "" {
		t.Errorf("valueless cookie = %+v", cookies[2])
	}
	if (&Request{}).Cookies() != nil {
		t.Error("no cookie header should give nil")
	}
}

func TestEncodeParseRoundTrip(t *testing.T) {
	orig := &Request{
		Method: "POST",
		Target: "/v1/events?sdk=1",
		Headers: []Header{
			{Name: "Host", Value: "events.duolingo.com"},
			{Name: "Content-Type", Value: "application/json"},
		},
		Body: []byte(`{"event":"lesson_start"}`),
	}
	reqs, err := ParseStream(orig.Encode())
	if err != nil {
		t.Fatal(err)
	}
	got := reqs[0]
	if got.Method != orig.Method || got.Target != orig.Target || !bytes.Equal(got.Body, orig.Body) {
		t.Errorf("round trip: %+v", got)
	}
	if got.Get("Content-Length") == "" {
		t.Error("Content-Length not added")
	}
}

func TestAbsoluteFormURL(t *testing.T) {
	r := &Request{Method: "GET", Target: "http://proxy.example/x", Proto: "HTTP/1.1"}
	if r.URL() != "http://proxy.example/x" {
		t.Errorf("absolute form url = %q", r.URL())
	}
}

// Property: Encode→ParseStream is the identity on method/target/body for
// any printable body.
func TestEncodeParseProperty(t *testing.T) {
	f := func(body []byte, seed uint8) bool {
		methodsList := []string{"GET", "POST", "PUT", "DELETE", "PATCH"}
		r := &Request{
			Method:  methodsList[int(seed)%len(methodsList)],
			Target:  "/p" + fmtInt(int(seed)),
			Headers: []Header{{Name: "Host", Value: "h.example"}},
			Body:    body,
		}
		reqs, err := ParseStream(r.Encode())
		if err != nil || len(reqs) != 1 {
			return false
		}
		got := reqs[0]
		if len(body) == 0 {
			return len(got.Body) == 0 && got.Method == r.Method
		}
		return bytes.Equal(got.Body, body) && got.Method == r.Method && got.Target == r.Target
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
