// Package httpx parses HTTP/1.x requests out of reassembled (and, for TLS
// flows, decrypted) client→server byte streams. The DiffAudit pipeline only
// audits outgoing data, so responses are never parsed; a stream may carry
// multiple requests over one connection (keep-alive), each of which becomes
// a separate outgoing request record.
package httpx

import (
	"bytes"
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Request is one parsed outgoing HTTP request.
type Request struct {
	Method  string
	Target  string // origin-form path+query, or absolute-form URL
	Proto   string // "HTTP/1.1"
	Headers []Header
	Body    []byte
}

// Header is an ordered header field.
type Header struct {
	Name, Value string
}

// Get returns the first header value with the given name, case-insensitive.
func (r *Request) Get(name string) string {
	for _, h := range r.Headers {
		if strings.EqualFold(h.Name, name) {
			return h.Value
		}
	}
	return ""
}

// Host returns the Host header value without a port.
func (r *Request) Host() string {
	h := strings.ToLower(r.Get("Host"))
	if i := strings.LastIndexByte(h, ':'); i >= 0 && strings.Count(h, ":") == 1 {
		h = h[:i]
	}
	return h
}

// URL reconstructs the full request URL, assuming https for port-less hosts
// (all audited traffic is TLS).
func (r *Request) URL() string {
	if strings.Contains(r.Target, "://") {
		return r.Target
	}
	return "https://" + r.Host() + r.Target
}

// Cookies parses the Cookie header into name/value pairs.
func (r *Request) Cookies() []Header {
	raw := r.Get("Cookie")
	if raw == "" {
		return nil
	}
	var out []Header
	for _, part := range strings.Split(raw, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, value, _ := strings.Cut(part, "=")
		out = append(out, Header{Name: name, Value: value})
	}
	return out
}

// Errors returned by the parser.
var (
	ErrIncomplete = errors.New("httpx: incomplete request at end of stream")
	ErrMalformed  = errors.New("httpx: malformed request")
)

var methods = map[string]bool{
	"GET": true, "POST": true, "PUT": true, "DELETE": true, "HEAD": true,
	"OPTIONS": true, "PATCH": true, "CONNECT": true, "TRACE": true,
}

// ParseStream extracts consecutive requests from a client→server stream.
// A trailing incomplete request yields the requests parsed so far along
// with ErrIncomplete; a stream that does not start with a request line
// yields ErrMalformed.
func ParseStream(stream []byte) ([]*Request, error) {
	var out []*Request
	rest := stream
	for len(rest) > 0 {
		req, n, err := parseOne(rest)
		if err != nil {
			if errors.Is(err, ErrIncomplete) && len(out) > 0 {
				return out, ErrIncomplete
			}
			return out, err
		}
		out = append(out, req)
		rest = rest[n:]
	}
	return out, nil
}

// parseOne parses a single request from the head of data, returning the
// request and the number of bytes consumed.
func parseOne(data []byte) (*Request, int, error) {
	headEnd := bytes.Index(data, []byte("\r\n\r\n"))
	if headEnd < 0 {
		return nil, 0, ErrIncomplete
	}
	head := string(data[:headEnd])
	lines := strings.Split(head, "\r\n")
	if len(lines) == 0 {
		return nil, 0, ErrMalformed
	}
	parts := strings.SplitN(lines[0], " ", 3)
	if len(parts) != 3 || !methods[parts[0]] || !strings.HasPrefix(parts[2], "HTTP/") {
		return nil, 0, fmt.Errorf("%w: bad request line %q", ErrMalformed, lines[0])
	}
	req := &Request{Method: parts[0], Target: parts[1], Proto: parts[2]}
	for _, line := range lines[1:] {
		name, value, ok := strings.Cut(line, ":")
		if !ok {
			return nil, 0, fmt.Errorf("%w: bad header %q", ErrMalformed, line)
		}
		req.Headers = append(req.Headers, Header{
			Name:  strings.TrimSpace(name),
			Value: strings.TrimSpace(value),
		})
	}
	consumed := headEnd + 4
	body := data[consumed:]

	switch {
	case strings.EqualFold(req.Get("Transfer-Encoding"), "chunked"):
		decoded, n, err := decodeChunked(body)
		if err != nil {
			return nil, 0, err
		}
		req.Body = decoded
		consumed += n
	default:
		clStr := req.Get("Content-Length")
		if clStr != "" {
			cl, err := strconv.Atoi(clStr)
			if err != nil || cl < 0 {
				return nil, 0, fmt.Errorf("%w: content-length %q", ErrMalformed, clStr)
			}
			if cl > len(body) {
				return nil, 0, ErrIncomplete
			}
			if cl > 0 {
				req.Body = body[:cl]
			}
			consumed += cl
		}
	}
	return req, consumed, nil
}

// decodeChunked decodes a chunked body, returning the payload and bytes
// consumed including the terminating zero chunk.
func decodeChunked(data []byte) ([]byte, int, error) {
	var out []byte
	off := 0
	for {
		nl := bytes.Index(data[off:], []byte("\r\n"))
		if nl < 0 {
			return nil, 0, ErrIncomplete
		}
		sizeStr := string(data[off : off+nl])
		if i := strings.IndexByte(sizeStr, ';'); i >= 0 {
			sizeStr = sizeStr[:i] // drop chunk extensions
		}
		size, err := strconv.ParseInt(strings.TrimSpace(sizeStr), 16, 32)
		if err != nil || size < 0 {
			return nil, 0, fmt.Errorf("%w: chunk size %q", ErrMalformed, sizeStr)
		}
		off += nl + 2
		if size == 0 {
			// Trailer: expect final CRLF.
			if off+2 > len(data) {
				return nil, 0, ErrIncomplete
			}
			if !bytes.HasPrefix(data[off:], []byte("\r\n")) {
				// Skip trailers until blank line.
				end := bytes.Index(data[off:], []byte("\r\n\r\n"))
				if end < 0 {
					return nil, 0, ErrIncomplete
				}
				return out, off + end + 4, nil
			}
			return out, off + 2, nil
		}
		if off+int(size)+2 > len(data) {
			return nil, 0, ErrIncomplete
		}
		out = append(out, data[off:off+int(size)]...)
		off += int(size)
		if !bytes.HasPrefix(data[off:], []byte("\r\n")) {
			return nil, 0, fmt.Errorf("%w: missing chunk terminator", ErrMalformed)
		}
		off += 2
	}
}

// Encode serializes the request as HTTP/1.1 wire bytes, adding a
// Content-Length header when a body is present and none is set.
func (r *Request) Encode() []byte {
	var b bytes.Buffer
	proto := r.Proto
	if proto == "" {
		proto = "HTTP/1.1"
	}
	target := r.Target
	if target == "" {
		target = "/"
	}
	fmt.Fprintf(&b, "%s %s %s\r\n", r.Method, target, proto)
	hasCL := false
	for _, h := range r.Headers {
		fmt.Fprintf(&b, "%s: %s\r\n", h.Name, h.Value)
		if strings.EqualFold(h.Name, "Content-Length") {
			hasCL = true
		}
	}
	if len(r.Body) > 0 && !hasCL {
		fmt.Fprintf(&b, "Content-Length: %d\r\n", len(r.Body))
	}
	b.WriteString("\r\n")
	b.Write(r.Body)
	return b.Bytes()
}
