package synth

import (
	"bytes"
	"reflect"
	"testing"

	"diffaudit/internal/core"
	"diffaudit/internal/flows"
	"diffaudit/internal/har"
	"diffaudit/internal/netcap/pcapio"
	"diffaudit/internal/netcap/tlsx"
)

func TestEmitHARStructure(t *testing.T) {
	ds := Generate(Config{Scale: 0.002})
	st := ds.Service("Duolingo")
	h := st.EmitHAR(flows.Child)
	if h.Log.Version != "1.2" || len(h.Log.Pages) != 1 {
		t.Fatalf("har header: %+v", h.Log.Version)
	}
	wantEntries := 0
	for _, r := range st.Requests {
		if r.Trace == flows.Child && r.Platform == flows.Web {
			wantEntries += r.Repeat
		}
	}
	if got := len(h.Log.Entries); got != wantEntries {
		t.Errorf("entries = %d, want %d (one per repeat)", got, wantEntries)
	}
	for _, e := range h.Log.Entries {
		if e.Request.Host() == "" {
			t.Fatal("entry without host")
		}
		if e.Request.Method != "POST" {
			t.Fatalf("method = %q", e.Request.Method)
		}
	}
}

func TestEmitHARDeterministic(t *testing.T) {
	ds := Generate(Config{Scale: 0.002})
	st := ds.Service("TikTok")
	a, _ := st.EmitHAR(flows.Adult).Marshal()
	b, _ := st.EmitHAR(flows.Adult).Marshal()
	if !bytes.Equal(a, b) {
		t.Error("HAR emission not deterministic")
	}
}

func TestEmitPCAPDeterministicAndKeyed(t *testing.T) {
	ds := Generate(Config{Scale: 0.002})
	st := ds.Service("Roblox")
	c1, err := st.EmitPCAP(flows.LoggedOut)
	if err != nil {
		t.Fatal(err)
	}
	c2, _ := st.EmitPCAP(flows.LoggedOut)
	var b1, b2 bytes.Buffer
	if err := pcapio.WritePcapng(&b1, c1); err != nil {
		t.Fatal(err)
	}
	_ = pcapio.WritePcapng(&b2, c2)
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("PCAP emission not deterministic")
	}
	if len(c1.Secrets) != 1 {
		t.Fatalf("secrets blocks = %d", len(c1.Secrets))
	}
	kl, err := tlsx.ParseKeyLog(c1.Secrets[0])
	if err != nil {
		t.Fatal(err)
	}
	if kl.Len() == 0 {
		t.Error("empty key log")
	}
}

func TestEmitPCAPMixesTLSVersions(t *testing.T) {
	ds := Generate(Config{Scale: 0.002})
	st := ds.Service("Quizlet")
	capt, err := st.EmitPCAP(flows.Adult)
	if err != nil {
		t.Fatal(err)
	}
	kl, err := tlsx.ParseKeyLog(capt.Secrets[0])
	if err != nil {
		t.Fatal(err)
	}
	// The key log must contain both TLS 1.3 traffic secrets and TLS 1.2
	// master secrets.
	text := string(capt.Secrets[0])
	if !bytes.Contains([]byte(text), []byte(tlsx.LabelClientTraffic)) {
		t.Error("no TLS 1.3 secrets in key log")
	}
	if !bytes.Contains([]byte(text), []byte(tlsx.LabelClientRandom)) {
		t.Error("no TLS 1.2 master secrets in key log")
	}
	_ = kl
}

func TestIdentityMatchesSpec(t *testing.T) {
	ds := Generate(Config{Scale: 0.002})
	for _, st := range ds.Services {
		id := st.Identity()
		if id.Name != st.Spec.Name || id.Owner != st.Spec.Owner {
			t.Errorf("identity mismatch for %s: %+v", st.Spec.Name, id)
		}
		if len(id.FirstPartyESLDs) != len(st.Spec.FirstPartyESLDs) {
			t.Errorf("%s first-party eSLDs mismatch", st.Spec.Name)
		}
	}
}

// TestUserEmissionFlowsIdentical pins the population-generation contract:
// a per-user start time changes the capture bytes (timestamps) but never
// the audited flows — every synthetic user of a service audits to the
// same grid as the canonical capture.
func TestUserEmissionFlowsIdentical(t *testing.T) {
	ds := Generate(Config{Scale: 0.002})
	st := ds.Service("Quizlet")

	if !UserStart(0).Equal(baseTime) {
		t.Fatal("user 0 must start at the canonical baseTime")
	}
	if UserStart(7).Equal(baseTime) || !UserStart(7).Equal(UserStart(7)) {
		t.Fatal("user starts must be distinct from baseTime and reproducible")
	}

	base, _ := st.EmitHAR(flows.Child).Marshal()
	alt, _ := st.EmitHARAt(flows.Child, UserStart(7)).Marshal()
	if bytes.Equal(base, alt) {
		t.Fatal("per-user capture bytes should differ")
	}

	audit := func(data []byte) interface{} {
		h, err := har.Parse(data)
		if err != nil {
			t.Fatal(err)
		}
		res := core.NewPipeline().AnalyzeRecords(st.Identity(), core.FromHAR(h, flows.Child, flows.Web))
		return res.ByTrace[flows.Child].GroupGrid()
	}
	if !reflect.DeepEqual(audit(base), audit(alt)) {
		t.Error("per-user capture audits to a different grid")
	}
}
