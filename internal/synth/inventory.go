package synth

import (
	"fmt"
	"sync"

	"diffaudit/internal/ats"
	"diffaudit/internal/entity"
	"diffaudit/internal/flows"
	"diffaudit/internal/services"
)

// Procedural third-party naming material. Combinations are deterministic
// per (service, index) so that the dataset is reproducible.
var (
	nameA = []string{"ad", "track", "metric", "pixel", "tag", "bid", "sync", "data", "event", "insight", "reach", "spark"}
	nameB = []string{"hub", "grid", "nest", "flux", "wave", "peak", "core", "lane", "forge", "scope", "mill", "yard"}
	subA  = []string{"collect", "t", "px", "ingest", "beacon", "rtb", "cdn", "api", "sdk", "match"}
)

// uniqueESLD names the i-th procedural third-party eSLD of a service.
func uniqueESLD(service string, i int) string {
	a := nameA[i%len(nameA)]
	b := nameB[(i/len(nameA))%len(nameB)]
	return fmt.Sprintf("%s%s-%c%d.com", a, b, service[0]|0x20, i)
}

// uniqueOrg names the owning organization for a procedural eSLD pair.
func uniqueOrg(service string, i int) string {
	// Two consecutive eSLDs share one owner, approximating the paper's
	// ~212 distinct companies across the dataset.
	return fmt.Sprintf("%s AdTech Group %c%d", nameB[(i/2)%len(nameB)], service[0]&^0x20, i/2)
}

// firstPartySubs are subdomain labels used to fabricate first-party hosts.
var firstPartySubs = []string{
	"www", "api", "m", "accounts", "assets", "static", "cdn", "img",
	"video", "auth", "login", "web", "app", "data", "events", "push",
	"social", "store", "help", "files", "search", "feed", "live",
	"upload", "sync", "config", "edge", "media", "games", "users",
	"friends", "chat", "presence", "avatar", "economy", "catalog",
	"inventory", "locale", "billing", "notify", "realtime", "thumbs",
	"gateway", "session", "profile", "leaderboard", "achievements",
	"quests", "shop", "trade", "clans", "groups", "badges", "develop",
	"education", "premium", "music", "clips", "stories", "studio",
}

// Inventory is a service's full destination inventory, classified.
type Inventory struct {
	Spec *services.Spec
	// ByClass maps each destination class to its FQDN pool, in
	// deterministic order.
	ByClass map[flows.DestClass][]string
	// All lists every FQDN.
	All []string
}

var registerOnce sync.Once

// RegisterSyntheticDomains registers the procedural third-party eSLDs with
// the entity dataset and the default ATS block lists. Generator and auditor
// thereby consult identical datasets, as the paper's pipeline consults one
// set of block lists. Idempotent.
func RegisterSyntheticDomains() {
	registerOnce.Do(func() {
		engine := ats.Default()
		for _, spec := range services.All() {
			atsCut := int(float64(spec.UniqueThirdESLDs) * spec.UniqueThirdATSFraction)
			for i := 0; i < spec.UniqueThirdESLDs; i++ {
				esld := uniqueESLD(spec.Name, i)
				entity.Register(entity.Org{
					Name:    uniqueOrg(spec.Name, i),
					Domains: []string{esld},
					Tracker: i < atsCut,
				})
				if i < atsCut {
					engine.AddEntries("synthetic-ats", esld)
				}
			}
		}
	})
}

// BuildInventory constructs and classifies the destination inventory for a
// service. It panics if the realized counts diverge from the Table 1
// calibration row — the overlap plan is checked, not assumed.
func BuildInventory(spec *services.Spec) *Inventory {
	RegisterSyntheticDomains()
	inv := &Inventory{
		Spec:    spec,
		ByClass: make(map[flows.DestClass][]string),
	}

	var all []string
	seen := map[string]bool{}
	add := func(fqdn string) {
		if !seen[fqdn] {
			seen[fqdn] = true
			all = append(all, fqdn)
		}
	}

	// First-party hosts: curated telemetry hosts first, then fabricated
	// subdomains round-robin over the service's eSLDs.
	for _, f := range spec.FirstPartyATSFQDNs {
		add(f)
	}
	i := 0
	for len(all) < spec.FirstPartyFQDNCount {
		sub := firstPartySubs[i%len(firstPartySubs)]
		esld := spec.FirstPartyESLDs[i%len(spec.FirstPartyESLDs)]
		if i >= len(firstPartySubs) {
			sub = fmt.Sprintf("%s%d", sub, i/len(firstPartySubs))
		}
		add(sub + "." + esld)
		i++
	}

	// Curated shared third parties.
	for _, f := range spec.SharedThirdParties {
		add(f)
	}

	// Procedural unique third parties: spread FQDNs over the eSLD pool.
	if spec.UniqueThirdESLDs > 0 {
		for j := 0; j < spec.UniqueThirdFQDNs; j++ {
			esld := uniqueESLD(spec.Name, j%spec.UniqueThirdESLDs)
			sub := subA[(j/spec.UniqueThirdESLDs)%len(subA)]
			if j < spec.UniqueThirdESLDs {
				add(sub + "." + esld)
			} else {
				add(fmt.Sprintf("%s%d.%s", sub, j/spec.UniqueThirdESLDs, esld))
			}
		}
	}

	inv.All = all
	engine := ats.Default()
	for _, fqdn := range all {
		d := flows.ResolveDestination(spec.Owner, spec.FirstPartyESLDs, fqdn, engine)
		inv.ByClass[d.Class] = append(inv.ByClass[d.Class], fqdn)
	}
	if got := len(inv.All); got != spec.Table1.Domains {
		panic(fmt.Sprintf("synth: %s inventory has %d FQDNs, Table 1 row says %d",
			spec.Name, got, spec.Table1.Domains))
	}
	return inv
}
