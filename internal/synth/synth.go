// Package synth fabricates the DiffAudit network-traffic dataset. It is the
// substitute for the paper's live data collection (rooted Pixel 6 +
// PCAPdroid for mobile, Chrome DevTools for web): service behavior profiles
// calibrated from the paper's published results drive a deterministic
// request planner whose output can be rendered as real HAR files and
// decryptable PCAP files. The audit pipeline re-derives every table and
// figure from this traffic without ever reading the profiles.
package synth

import (
	"fmt"
	"sort"

	"diffaudit/internal/flows"
	"diffaudit/internal/ontology"
	"diffaudit/internal/services"
)

// Request is one outgoing request template. Repeat counts how many times
// the request is re-sent during the trace (each repeat is one outgoing
// packet in Table 1 terms); Conns says over how many TCP connections the
// repeats are spread.
type Request struct {
	Service  string
	Trace    flows.TraceCategory
	Platform flows.Platform
	Method   string
	FQDN     string
	Path     string
	Query    []kv
	Cookies  []kv
	Body     map[string]string
	Repeat   int
	Conns    int
}

// URL renders the request URL.
func (r *Request) URL() string {
	u := "https://" + r.FQDN + r.Path
	for i, q := range r.Query {
		sep := "&"
		if i == 0 {
			sep = "?"
		}
		u += sep + q.Key + "=" + q.Value
	}
	return u
}

// ServiceTraffic is the generated traffic of one service.
type ServiceTraffic struct {
	Spec     *services.Spec
	Requests []*Request
}

// Dataset is the full generated dataset.
type Dataset struct {
	Services []*ServiceTraffic
}

// PersonaPlan schedules traffic generation for one persona. The service
// profiles are calibrated for the paper's four built-in personas only, so
// a custom persona borrows the behavior profile (grid, linkable-party and
// largest-set targets) of a built-in template via Like — e.g. an EU teen
// persona generating "like" the adolescent trace.
type PersonaPlan struct {
	// Persona is the trace to generate.
	Persona flows.Persona
	// Like is the built-in persona whose profile column drives generation.
	// The zero value means the Child column; a built-in Persona with Like
	// unset defaults to its own column. Non-built-in Like values are
	// rejected.
	Like flows.Persona
}

// Config tunes generation.
type Config struct {
	// Scale in (0,1] multiplies packet (Repeat) and connection budgets
	// while preserving the request structure, so that wire-format tests
	// stay fast. Scale 1 reproduces the Table 1 packet counts exactly.
	Scale float64
	// Personas lists the traces to generate, in order. Empty means the
	// four built-in personas — the paper's dataset, byte-identical to the
	// closed-enum generator.
	Personas []PersonaPlan
}

// Generate fabricates the six-service dataset.
func Generate(cfg Config) *Dataset {
	if cfg.Scale <= 0 || cfg.Scale > 1 {
		cfg.Scale = 1
	}
	builtin := len(flows.BuiltinPersonas())
	if len(cfg.Personas) == 0 {
		for _, t := range flows.BuiltinPersonas() {
			cfg.Personas = append(cfg.Personas, PersonaPlan{Persona: t, Like: t})
		}
	} else {
		plans := make([]PersonaPlan, len(cfg.Personas))
		copy(plans, cfg.Personas)
		for i := range plans {
			// A zero Like on a built-in persona means "itself"; custom
			// personas with an unset Like default to the Child column.
			if plans[i].Like == 0 && int(plans[i].Persona) > 0 && int(plans[i].Persona) < builtin {
				plans[i].Like = plans[i].Persona
			}
			if int(plans[i].Like) >= builtin || plans[i].Like < 0 {
				panic(fmt.Sprintf("synth: persona plan %d (%s): template %s is not a built-in persona",
					i, plans[i].Persona, plans[i].Like))
			}
		}
		cfg.Personas = plans
	}
	RegisterSyntheticDomains()
	ds := &Dataset{}
	for _, spec := range services.All() {
		ds.Services = append(ds.Services, generateService(spec, cfg))
	}
	return ds
}

// Service returns one service's traffic by name.
func (d *Dataset) Service(name string) *ServiceTraffic {
	for _, s := range d.Services {
		if s.Spec.Name == name {
			return s
		}
	}
	return nil
}

// TotalPackets sums Repeat over every request.
func (d *Dataset) TotalPackets() int {
	total := 0
	for _, s := range d.Services {
		for _, r := range s.Requests {
			total += r.Repeat
		}
	}
	return total
}

// planner builds one service's request list.
type planner struct {
	spec *services.Spec
	inv  *Inventory
	reqs []*Request
	// personas lists the generated traces in plan order; like maps each to
	// the built-in persona whose profile column drives it.
	personas []flows.Persona
	like     map[flows.Persona]flows.Persona
	// covered tracks which (group, class, trace, platform) cells have been
	// realized.
	covered map[coverKey]bool
	// keyCursor rotates through each category's key pool.
	keyCursor map[string]int
	// prefOrder is the canonical category preference order.
	prefOrder []*ontology.Category
	// classOf caches destination classes per FQDN.
	classOf map[string]flows.DestClass
	// used marks FQDNs already contacted per trace.
	used map[flows.Persona]map[string]bool
	// designated marks the linkable parties per trace.
	designated map[flows.Persona]map[string]bool
	// typesSent tracks the distinct categories sent per (trace, FQDN).
	typesSent map[string]map[string]bool
}

// typeKey keys typesSent.
func typeKey(t flows.TraceCategory, fqdn string) string {
	return fmt.Sprintf("%d/%s", t, fqdn)
}

func (p *planner) typeCount(t flows.TraceCategory, fqdn string) int {
	return len(p.typesSent[typeKey(t, fqdn)])
}

func (p *planner) hasType(t flows.TraceCategory, fqdn string, cat *ontology.Category) bool {
	return p.typesSent[typeKey(t, fqdn)][cat.Name]
}

type coverKey struct {
	group ontology.Level2
	class flows.DestClass
	trace flows.TraceCategory
	plat  flows.Platform
}

func generateService(spec *services.Spec, cfg Config) *ServiceTraffic {
	p := &planner{
		spec:       spec,
		inv:        BuildInventory(spec),
		like:       make(map[flows.Persona]flows.Persona, len(cfg.Personas)),
		covered:    make(map[coverKey]bool),
		keyCursor:  make(map[string]int),
		prefOrder:  services.PreferenceOrder(),
		classOf:    make(map[string]flows.DestClass),
		used:       make(map[flows.Persona]map[string]bool, len(cfg.Personas)),
		designated: make(map[flows.Persona]map[string]bool, len(cfg.Personas)),
	}
	for _, plan := range cfg.Personas {
		p.personas = append(p.personas, plan.Persona)
		p.like[plan.Persona] = plan.Like
	}
	for class, pool := range p.inv.ByClass {
		for _, f := range pool {
			p.classOf[f] = class
		}
	}
	for _, t := range p.personas {
		p.used[t] = make(map[string]bool)
		p.designated[t] = make(map[string]bool)
	}
	p.typesSent = make(map[string]map[string]bool)

	for _, t := range p.personas {
		p.planLinkable(t)
	}
	for _, t := range p.personas {
		p.planCoverage(t)
	}
	p.planLeftoverThirdParties()
	p.planFirstParties()
	p.sprinkleNoise(spec.NoiseKeys)
	p.allocate(cfg)

	return &ServiceTraffic{Spec: spec, Requests: p.reqs}
}

// mask returns the grid mask for (group, class, trace), reading the
// persona's template column of the profile grid.
func (p *planner) mask(g ontology.Level2, c flows.DestClass, t flows.TraceCategory) flows.PlatformMask {
	return p.spec.Grid.Mask(g, c, p.like[t])
}

// linkableParties returns the Figure 3 target for a persona's template.
func (p *planner) linkableParties(t flows.Persona) int {
	return p.spec.LinkableParties[p.like[t]]
}

// largestSet returns the Figure 4 target for a persona's template.
func (p *planner) largestSet(t flows.Persona) int {
	return p.spec.LargestSet[p.like[t]]
}

// allowedCats lists, in preference order, the observed categories whose
// group is present for (class, trace) on any platform.
func (p *planner) allowedCats(c flows.DestClass, t flows.TraceCategory) []*ontology.Category {
	var out []*ontology.Category
	for _, cat := range p.prefOrder {
		if p.mask(cat.Group, c, t) != 0 {
			out = append(out, cat)
		}
	}
	return out
}

// splitIDPI partitions categories into identifiers and personal information.
func splitIDPI(cats []*ontology.Category) (ids, pis []*ontology.Category) {
	for _, c := range cats {
		if c.IsIdentifier() {
			ids = append(ids, c)
		} else {
			pis = append(pis, c)
		}
	}
	return ids, pis
}

// firstPlatform picks the deterministic first platform of a mask.
func firstPlatform(m flows.PlatformMask) flows.Platform {
	if m&flows.OnWeb != 0 {
		return flows.Web
	}
	return flows.Mobile
}

// nextKey rotates through a category's key pool.
func (p *planner) nextKey(cat *ontology.Category) kv {
	pool := variantKeys(cat)
	i := p.keyCursor[cat.Name]
	p.keyCursor[cat.Name] = i + 1
	return pool[i%len(pool)]
}

// emit adds one request carrying the given categories to a destination on a
// platform, panicking when any category's cell lies outside the grid — the
// generator's central invariant.
func (p *planner) emit(t flows.TraceCategory, plat flows.Platform, fqdn string, cats []*ontology.Category) {
	class := p.classOf[fqdn]
	body := make(map[string]string, len(cats))
	var cookies []kv
	for _, cat := range cats {
		m := p.mask(cat.Group, class, t)
		if !m.Has(plat) {
			panic(fmt.Sprintf("synth: %s/%s: category %q (%v) to %s (%v) on %v outside grid mask %v",
				p.spec.Name, t, cat.Name, cat.Group, fqdn, class, plat, m))
		}
		k := p.nextKey(cat)
		if cat.Name == "Device Software Identifiers" && len(cookies) == 0 {
			// Software identifiers ride in cookies on real traffic.
			cookies = append(cookies, k)
		} else {
			body[k.Key] = k.Value
		}
		p.covered[coverKey{cat.Group, class, t, plat}] = true
		tk := typeKey(t, fqdn)
		if p.typesSent[tk] == nil {
			p.typesSent[tk] = make(map[string]bool)
		}
		p.typesSent[tk][cat.Name] = true
	}
	p.used[t][fqdn] = true
	p.reqs = append(p.reqs, &Request{
		Service:  p.spec.Name,
		Trace:    t,
		Platform: plat,
		Method:   "POST",
		FQDN:     fqdn,
		Path:     fmt.Sprintf("/v1/%s", pathFor(t)),
		Cookies:  cookies,
		Body:     body,
		Repeat:   1,
		Conns:    1,
	})
}

func pathFor(t flows.TraceCategory) string {
	if !t.LoggedIn() {
		return "collect"
	}
	return "events"
}

// planLinkable designates the trace's linkable third parties (Figure 3) and
// assigns them data type sets (Figure 4).
func (p *planner) planLinkable(t flows.TraceCategory) {
	n := p.linkableParties(t)
	if n == 0 {
		return
	}
	// Usable third-party classes: those allowing at least one identifier
	// and one personal-information category.
	type classInfo struct {
		class flows.DestClass
		ids   []*ontology.Category
		pis   []*ontology.Category
		all   []*ontology.Category
	}
	var usable []classInfo
	for _, c := range []flows.DestClass{flows.ThirdPartyATS, flows.ThirdParty} {
		cats := p.allowedCats(c, t)
		ids, pis := splitIDPI(cats)
		if len(ids) > 0 && len(pis) > 0 && len(p.inv.ByClass[c]) > 0 {
			usable = append(usable, classInfo{c, ids, pis, cats})
		}
	}
	if len(usable) == 0 {
		panic(fmt.Sprintf("synth: %s/%v: %d linkable parties required but no usable class", p.spec.Name, t, n))
	}

	// The head party carries the largest linkable set (Figure 4): pick the
	// usable class with the most available categories, then its pool head
	// (rotated per trace so head parties differ across traces).
	best := 0
	for i, u := range usable {
		if len(u.all) > len(usable[best].all) {
			best = i
		}
	}
	type party struct {
		fqdn string
		info classInfo
	}
	headPool := p.inv.ByClass[usable[best].class]
	head := party{headPool[(int(t)*3)%len(headPool)], usable[best]}

	// Remaining designated FQDNs: round-robin across usable classes,
	// rotating the pool start per trace, skipping the head.
	parties := []party{head}
	p.designated[t][head.fqdn] = true
	taken := map[string]bool{head.fqdn: true}
	idx := make([]int, len(usable))
	for i := 0; len(parties) < n; i++ {
		ci := usable[i%len(usable)]
		pool := p.inv.ByClass[ci.class]
		if idx[i%len(usable)] >= len(pool) {
			exhausted := true
			for j, u := range usable {
				if idx[j] < len(p.inv.ByClass[u.class]) {
					exhausted = false
				}
			}
			if exhausted {
				panic(fmt.Sprintf("synth: %s/%v: third-party pools too small for %d linkable parties", p.spec.Name, t, n))
			}
			continue
		}
		off := (idx[i%len(usable)] + int(t)*3) % len(pool)
		fqdn := pool[off]
		idx[i%len(usable)]++
		if taken[fqdn] {
			continue
		}
		taken[fqdn] = true
		p.designated[t][fqdn] = true
		parties = append(parties, party{fqdn, ci})
	}

	k := p.largestSet(t)
	types := head.info.all
	if len(types) > k {
		types = types[:k]
	}
	// The head set must be linkable itself.
	if ids, pis := splitIDPI(types); len(ids) == 0 || len(pis) == 0 {
		panic(fmt.Sprintf("synth: %s/%v: largest set of %d not linkable", p.spec.Name, t, k))
	}
	p.emitByPlatform(t, head.fqdn, types)

	// Standard sets for the remaining parties: one identifier plus up to
	// four personal-information categories, never exceeding the head set.
	for _, pt := range parties[1:] {
		size := len(types)
		if size > 5 {
			size = 5
		}
		set := []*ontology.Category{pt.info.ids[0]}
		for _, pi := range pt.info.pis {
			if len(set) >= size {
				break
			}
			set = append(set, pi)
		}
		p.emitByPlatform(t, pt.fqdn, set)
	}
}

// emitByPlatform bundles categories per platform (each category goes to the
// first platform its cell allows) and emits one request per platform.
func (p *planner) emitByPlatform(t flows.TraceCategory, fqdn string, cats []*ontology.Category) {
	class := p.classOf[fqdn]
	byPlat := map[flows.Platform][]*ontology.Category{}
	for _, cat := range cats {
		m := p.mask(cat.Group, class, t)
		if m == 0 {
			panic(fmt.Sprintf("synth: %s/%v: category %q not allowed toward class %v", p.spec.Name, t, cat.Name, class))
		}
		plat := firstPlatform(m)
		byPlat[plat] = append(byPlat[plat], cat)
	}
	for _, plat := range []flows.Platform{flows.Web, flows.Mobile} {
		if len(byPlat[plat]) > 0 {
			p.emit(t, plat, fqdn, byPlat[plat])
		}
	}
}

// planCoverage tops up every grid cell so the realized grid equals the
// profile exactly: for each (group, class, platform) present in the grid,
// at least one flow must exist.
func (p *planner) planCoverage(t flows.TraceCategory) {
	for _, g := range ontology.Level2Groups() {
		// Representative category: first observed preference-order member.
		var rep *ontology.Category
		for _, cat := range p.prefOrder {
			if cat.Group == g {
				rep = cat
				break
			}
		}
		if rep == nil {
			continue
		}
		for _, c := range flows.DestClasses() {
			m := p.mask(g, c, t)
			for _, plat := range []flows.Platform{flows.Web, flows.Mobile} {
				if !m.Has(plat) || p.covered[coverKey{g, c, t, plat}] {
					continue
				}
				fqdn := p.pickDest(t, c, rep)
				p.emit(t, plat, fqdn, []*ontology.Category{rep})
			}
		}
	}
}

// pickDest selects a destination of the class for a category.
//
// Identifier categories toward third parties must reuse a designated
// linkable party (Figure 3 stays exact), preferring one that already
// received the category so the largest set (Figure 4) stays exact.
// Personal-information categories prefer a non-designated party, which a
// single personal-information type cannot make linkable.
func (p *planner) pickDest(t flows.TraceCategory, c flows.DestClass, cat *ontology.Category) string {
	pool := p.inv.ByClass[c]
	if len(pool) == 0 {
		panic(fmt.Sprintf("synth: %s: empty pool for class %v", p.spec.Name, c))
	}
	if !c.IsThirdParty() {
		return pool[int(t)%len(pool)]
	}
	if cat.IsIdentifier() {
		best := ""
		for _, f := range pool {
			if !p.designated[t][f] {
				continue
			}
			if p.hasType(t, f, cat) {
				return f
			}
			if best == "" || p.typeCount(t, f) < p.typeCount(t, best) {
				best = f
			}
		}
		if best == "" {
			panic(fmt.Sprintf("synth: %s/%v: identifier coverage for class %v needs a designated party", p.spec.Name, t, c))
		}
		return best
	}
	for _, f := range pool {
		if !p.designated[t][f] {
			return f
		}
	}
	// Every pool member is designated: reuse the smallest set.
	best := pool[0]
	for _, f := range pool {
		if p.typeCount(t, f) < p.typeCount(t, best) {
			best = f
		}
	}
	return best
}

// planLeftoverThirdParties contacts every third-party FQDN not yet used in
// any trace, sending a single personal-information category (non-linkable).
func (p *planner) planLeftoverThirdParties() {
	home := 0
	for _, c := range []flows.DestClass{flows.ThirdParty, flows.ThirdPartyATS} {
		for _, fqdn := range p.inv.ByClass[c] {
			usedAnywhere := false
			for _, t := range p.personas {
				if p.used[t][fqdn] {
					usedAnywhere = true
					break
				}
			}
			if usedAnywhere {
				continue
			}
			// Find a home trace whose grid allows a personal-information
			// flow to this class.
			placed := false
			for i := 0; i < len(p.personas) && !placed; i++ {
				t := p.personas[(home+i)%len(p.personas)]
				_, pis := splitIDPI(p.allowedCats(c, t))
				if len(pis) == 0 {
					continue
				}
				cats := []*ontology.Category{pis[home%len(pis)]}
				if len(pis) > 1 {
					second := pis[(home+1)%len(pis)]
					if second != cats[0] {
						cats = append(cats, second)
					}
				}
				p.emitByPlatform(t, fqdn, cats)
				placed = true
			}
			if !placed {
				panic(fmt.Sprintf("synth: %s: no home trace for third party %s (class %v)", p.spec.Name, fqdn, c))
			}
			home++
		}
	}
}

// planFirstParties contacts every first-party FQDN, rotating categories so
// all observed data types surface in the dataset.
func (p *planner) planFirstParties() {
	rot := 0
	for _, c := range []flows.DestClass{flows.FirstParty, flows.FirstPartyATS} {
		for _, fqdn := range p.inv.ByClass[c] {
			// Home trace: rotate; the grid has first-party flows in every
			// trace for every service, but guard anyway.
			placed := false
			for i := 0; i < len(p.personas) && !placed; i++ {
				t := p.personas[(rot+i)%len(p.personas)]
				cats := p.allowedCats(c, t)
				if len(cats) == 0 {
					continue
				}
				// Three categories per host, rotating over the allowed list.
				pick := []*ontology.Category{cats[rot%len(cats)]}
				for k := 1; k <= 2 && k < len(cats); k++ {
					pick = append(pick, cats[(rot+k)%len(cats)])
				}
				p.emitByPlatform(t, fqdn, pick)
				placed = true
			}
			if !placed {
				panic(fmt.Sprintf("synth: %s: no home trace for first party %s", p.spec.Name, fqdn))
			}
			rot++
		}
	}
}

// allocate distributes the Table 1 packet and TCP-flow budgets across the
// planned requests.
func (p *planner) allocate(cfg Config) {
	n := len(p.reqs)
	if n == 0 {
		return
	}
	packets := int(float64(p.spec.Table1.Packets) * cfg.Scale)
	conns := int(float64(p.spec.Table1.TCPFlows) * cfg.Scale)
	if packets < n {
		packets = n
	}
	if conns < n {
		conns = n
	}
	base, rem := packets/n, packets%n
	for i, r := range p.reqs {
		r.Repeat = base
		if i < rem {
			r.Repeat++
		}
	}
	// Connections: at least one per request, remainder spread while
	// respecting Conns ≤ Repeat.
	left := conns - n
	for left > 0 {
		progress := false
		for _, r := range p.reqs {
			if left == 0 {
				break
			}
			if r.Conns < r.Repeat {
				add := r.Repeat - r.Conns
				if add > left {
					add = left
				}
				// Spread gently: cap per pass.
				if cap := r.Repeat / 4; cap > 0 && add > cap {
					add = cap
				}
				if add == 0 {
					add = 1
				}
				r.Conns += add
				left -= add
				progress = true
			}
		}
		if !progress {
			break // all requests saturated (Conns == Repeat)
		}
	}
	// Sort requests deterministically: by trace, platform, FQDN.
	sort.SliceStable(p.reqs, func(a, b int) bool {
		ra, rb := p.reqs[a], p.reqs[b]
		if ra.Trace != rb.Trace {
			return ra.Trace < rb.Trace
		}
		if ra.Platform != rb.Platform {
			return ra.Platform < rb.Platform
		}
		return ra.FQDN < rb.FQDN
	})
}
