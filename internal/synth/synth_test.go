package synth

import (
	"testing"

	"diffaudit/internal/ats"
	"diffaudit/internal/core"
	"diffaudit/internal/flows"
	"diffaudit/internal/ontology"
	"diffaudit/internal/services"
)

func TestInventoryMatchesTable1(t *testing.T) {
	for _, spec := range services.All() {
		inv := BuildInventory(spec) // panics on mismatch
		if got := len(inv.All); got != spec.Table1.Domains {
			t.Errorf("%s: %d FQDNs, want %d", spec.Name, got, spec.Table1.Domains)
		}
		// Class pools partition the inventory.
		total := 0
		for _, pool := range inv.ByClass {
			total += len(pool)
		}
		if total != len(inv.All) {
			t.Errorf("%s: class pools sum to %d, inventory has %d", spec.Name, total, len(inv.All))
		}
	}
}

func TestYouTubeHasNoThirdParties(t *testing.T) {
	spec, _ := services.ByName("YouTube")
	inv := BuildInventory(spec)
	if n := len(inv.ByClass[flows.ThirdParty]) + len(inv.ByClass[flows.ThirdPartyATS]); n != 0 {
		t.Errorf("YouTube inventory has %d third parties, want 0 (Google owns everything it contacts)", n)
	}
}

func TestFirstPartyATSHostsAreBlocked(t *testing.T) {
	engine := ats.Default()
	for _, spec := range services.All() {
		for _, f := range spec.FirstPartyATSFQDNs {
			if !engine.IsATS(f) {
				t.Errorf("%s: first-party telemetry host %s is not on any block list", spec.Name, f)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Scale: 0.01})
	b := Generate(Config{Scale: 0.01})
	if len(a.Services) != len(b.Services) {
		t.Fatal("service count differs")
	}
	for i := range a.Services {
		ra, rb := a.Services[i].Requests, b.Services[i].Requests
		if len(ra) != len(rb) {
			t.Fatalf("%s: request counts differ: %d vs %d", a.Services[i].Spec.Name, len(ra), len(rb))
		}
		for j := range ra {
			if ra[j].URL() != rb[j].URL() || ra[j].Repeat != rb[j].Repeat || ra[j].Conns != rb[j].Conns {
				t.Fatalf("%s: request %d differs", a.Services[i].Spec.Name, j)
			}
		}
	}
}

func TestScalePreservesStructure(t *testing.T) {
	small := Generate(Config{Scale: 0.005})
	full := Generate(Config{Scale: 1})
	for i := range small.Services {
		s, f := small.Services[i], full.Services[i]
		if len(s.Requests) != len(f.Requests) {
			t.Errorf("%s: scale changed template count: %d vs %d",
				s.Spec.Name, len(s.Requests), len(f.Requests))
		}
		for j := range s.Requests {
			if s.Requests[j].FQDN != f.Requests[j].FQDN {
				t.Fatalf("%s: scale changed request order", s.Spec.Name)
			}
		}
	}
}

func TestFullScalePacketAndFlowBudgets(t *testing.T) {
	ds := Generate(Config{Scale: 1})
	for _, st := range ds.Services {
		packets, conns := 0, 0
		for _, r := range st.Requests {
			packets += r.Repeat
			conns += r.Conns
			if r.Conns > r.Repeat {
				t.Errorf("%s: request to %s has more connections (%d) than repeats (%d)",
					st.Spec.Name, r.FQDN, r.Conns, r.Repeat)
			}
		}
		if packets != st.Spec.Table1.Packets {
			t.Errorf("%s: packets = %d, want %d", st.Spec.Name, packets, st.Spec.Table1.Packets)
		}
		if conns != st.Spec.Table1.TCPFlows {
			t.Errorf("%s: connections = %d, want %d", st.Spec.Name, conns, st.Spec.Table1.TCPFlows)
		}
	}
}

func TestVariantPoolsNonEmptyAndCorrect(t *testing.T) {
	for _, cat := range ontology.ObservedCategories() {
		pool := variantKeys(cat)
		if len(pool) < 2 {
			t.Errorf("category %q has only %d classifiable keys", cat.Name, len(pool))
		}
		seen := map[string]bool{}
		for _, k := range pool {
			if seen[k.Key] {
				t.Errorf("category %q has duplicate key %q", cat.Name, k.Key)
			}
			seen[k.Key] = true
		}
	}
}

func TestEveryRequestWithinGridMask(t *testing.T) {
	// emit() already panics on violations; this re-derives the check from
	// the outside using the pipeline's destination resolution.
	ds := Generate(Config{Scale: 0.01})
	engine := ats.Default()
	for _, st := range ds.Services {
		for _, r := range st.Requests {
			d := flows.ResolveDestination(st.Spec.Owner, st.Spec.FirstPartyESLDs, r.FQDN, engine)
			// Every planted key must classify into a category whose group
			// is present for this (class, trace, platform).
			labeler := core.NewPipeline()
			recs := []core.RequestRecord{{
				Trace: r.Trace, Platform: r.Platform, Method: r.Method,
				URL: r.URL(), FQDN: r.FQDN, BodyMIME: "application/json",
				Body: bodyJSON(r.Body), Repeat: 1,
			}}
			res := labeler.AnalyzeRecords(st.Identity(), recs)
			for _, f := range res.ByTrace[r.Trace].Flows() {
				m := st.Spec.Grid.Mask(f.Category.Group, d.Class, r.Trace)
				if !m.Has(r.Platform) {
					t.Fatalf("%s: flow %s to %s (%v) on %v outside grid",
						st.Spec.Name, f.Category.Name, r.FQDN, d.Class, r.Platform)
				}
			}
		}
		break // one service suffices for this expensive external check
	}
}

func TestUniqueESLDNamesDoNotCollide(t *testing.T) {
	seen := map[string]string{}
	for _, spec := range services.All() {
		for i := 0; i < spec.UniqueThirdESLDs; i++ {
			e := uniqueESLD(spec.Name, i)
			if owner, dup := seen[e]; dup && owner != spec.Name {
				t.Errorf("procedural eSLD %s generated for both %s and %s", e, owner, spec.Name)
			}
			seen[e] = spec.Name
		}
	}
}
