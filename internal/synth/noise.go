package synth

import (
	"fmt"
	"hash/fnv"
	"strings"
	"sync"

	"diffaudit/internal/classifier"
)

// The paper's 3,968 unique raw data types include a long tail of opaque
// strings "that have internal meaning known only to the app developers",
// which its confidence threshold excludes from the final dataset. The
// synthesizer reproduces that tail with noise keys that are self-validating
// in the opposite direction of the variant pools: a candidate is only
// planted if the production classifier REJECTS it (hallucination or
// confidence below 0.8), so noise inflates the raw-data-type and
// dropped-key statistics without ever creating a data flow.

var (
	noiseMu    sync.Mutex
	noiseCache = map[string][]string{}
)

// noiseKeys returns n deterministic sub-threshold keys for a service.
func noiseKeys(service string, n int) []string {
	noiseMu.Lock()
	defer noiseMu.Unlock()
	key := fmt.Sprintf("%s/%d", service, n)
	if cached, ok := noiseCache[key]; ok {
		return cached
	}
	labeler := classifier.FinalLabeler()
	prefix := strings.ToLower(service[:1])
	var out []string
	for i := 0; len(out) < n; i++ {
		cand := prefix + junkString(service, i)
		if _, _, ok := labeler.Label(cand); !ok {
			out = append(out, cand)
		}
	}
	noiseCache[key] = out
	return out
}

const junkAlphabet = "abcdefghijklmnopqrstuvwxyz0123456789"

// junkString derives an opaque developer-internal-looking token from a
// hash stream.
func junkString(service string, i int) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "noise/%s/%d", service, i)
	v := h.Sum64()
	n := 5 + int(v%5)
	var b strings.Builder
	for j := 0; j < n; j++ {
		b.WriteByte(junkAlphabet[v%uint64(len(junkAlphabet))])
		v = v*6364136223846793005 + 1442695040888963407
	}
	return b.String()
}

// sprinkleNoise distributes the service's noise keys across the planned
// requests (appended to bodies round-robin). Called before allocation so
// request ordering stays deterministic.
func (p *planner) sprinkleNoise(n int) {
	if n <= 0 || len(p.reqs) == 0 {
		return
	}
	keys := noiseKeys(p.spec.Name, n)
	for i, k := range keys {
		r := p.reqs[i%len(p.reqs)]
		if r.Body == nil {
			r.Body = make(map[string]string)
		}
		r.Body[k] = fmt.Sprintf("0x%08x", i*2654435761)
	}
}
