package synth

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net/netip"
	"sort"
	"strings"
	"time"

	"diffaudit/internal/core"
	"diffaudit/internal/extract"
	"diffaudit/internal/flows"
	"diffaudit/internal/har"
	"diffaudit/internal/httpx"
	"diffaudit/internal/netcap/dnsx"
	"diffaudit/internal/netcap/layers"
	"diffaudit/internal/netcap/pcapio"
	"diffaudit/internal/netcap/tlsx"
)

// baseTime anchors all synthetic timestamps (fall 2023, the paper's
// collection window).
var baseTime = time.Date(2023, 10, 2, 15, 0, 0, 0, time.UTC)

// Identity converts the profile into the pipeline's service identity.
func (st *ServiceTraffic) Identity() core.ServiceIdentity {
	return core.ServiceIdentity{
		Name:            st.Spec.Name,
		Owner:           st.Spec.Owner,
		FirstPartyESLDs: st.Spec.FirstPartyESLDs,
	}
}

// bodyJSON renders a request body deterministically.
func bodyJSON(body map[string]string) []byte {
	if len(body) == 0 {
		return nil
	}
	data, err := json.Marshal(body)
	if err != nil {
		panic("synth: body marshal: " + err.Error())
	}
	return data
}

// Records expands the traffic into pipeline request records. Each TCP
// connection becomes one record (so connection counting works), with the
// request's Repeat budget spread across its connections.
func (st *ServiceTraffic) Records() []core.RequestRecord {
	var out []core.RequestRecord
	connCtr := 0
	for _, r := range st.Requests {
		conns := r.Conns
		if conns < 1 {
			conns = 1
		}
		base, rem := r.Repeat/conns, r.Repeat%conns
		for c := 0; c < conns; c++ {
			repeat := base
			if c < rem {
				repeat++
			}
			if repeat == 0 {
				continue
			}
			connCtr++
			rec := core.RequestRecord{
				Trace:    r.Trace,
				Platform: r.Platform,
				Method:   r.Method,
				URL:      r.URL(),
				FQDN:     r.FQDN,
				BodyMIME: "application/json",
				Body:     bodyJSON(r.Body),
				Repeat:   repeat,
				ConnID:   fmt.Sprintf("%s/%d/%d/c%d", st.Spec.Name, r.Trace, r.Platform, connCtr),
			}
			for _, q := range r.Query {
				// Query pairs already ride in the URL; nothing extra.
				_ = q
			}
			for _, ck := range r.Cookies {
				rec.Cookies = append(rec.Cookies, extract.KVPair{Name: ck.Key, Value: ck.Value})
			}
			rec.Headers = append(rec.Headers,
				extract.KVPair{Name: "Host", Value: r.FQDN},
				extract.KVPair{Name: "User-Agent", Value: userAgent(r.Platform)},
			)
			out = append(out, rec)
		}
	}
	return out
}

func userAgent(p flows.Platform) string {
	if p == flows.Mobile {
		return "ServiceApp/7.44 (Linux; Android 13; Pixel 6)"
	}
	return "Mozilla/5.0 (X11; Linux x86_64) Chrome/118.0"
}

// EmitHAR renders one trace of the web platform as a HAR document, the
// format Chrome DevTools exports.
func (st *ServiceTraffic) EmitHAR(trace flows.TraceCategory) *har.HAR {
	return st.EmitHARAt(trace, baseTime)
}

// EmitHARAt is EmitHAR with an explicit capture start time. Distinct
// starts yield distinct capture bytes whose audited flows are identical —
// the per-user variation axis population-scale generation uses (every
// synthetic user browses the same service, at a different time).
func (st *ServiceTraffic) EmitHARAt(trace flows.TraceCategory, start time.Time) *har.HAR {
	h := har.New()
	h.Log.Pages = []har.Page{{
		StartedDateTime: start,
		ID:              "page_1",
		Title:           "https://www." + st.Spec.FirstPartyESLDs[0] + "/",
	}}
	ts := start
	connCtr := 0
	for _, r := range st.Requests {
		if r.Trace != trace || r.Platform != flows.Web {
			continue
		}
		conns := r.Conns
		if conns < 1 {
			conns = 1
		}
		for i := 0; i < r.Repeat; i++ {
			connID := fmt.Sprintf("%d", connCtr+i%conns)
			body := bodyJSON(r.Body)
			entry := har.Entry{
				Pageref:         "page_1",
				StartedDateTime: ts,
				Time:            12.5,
				Connection:      connID,
				Request: har.Request{
					Method:      r.Method,
					URL:         r.URL(),
					HTTPVersion: "HTTP/1.1",
					Headers: []har.NV{
						{Name: "Host", Value: r.FQDN},
						{Name: "User-Agent", Value: userAgent(flows.Web)},
						{Name: "Content-Type", Value: "application/json"},
					},
					BodySize: len(body),
				},
				Response: har.Response{
					Status: 200, StatusText: "OK", HTTPVersion: "HTTP/1.1",
					Content: har.Content{Size: 2, MimeType: "application/json", Text: "{}"},
				},
			}
			for _, ck := range r.Cookies {
				entry.Request.Cookies = append(entry.Request.Cookies, har.Cookie{Name: ck.Key, Value: ck.Value})
			}
			if body != nil {
				entry.Request.PostData = &har.PostData{MimeType: "application/json", Text: string(body)}
			}
			h.Append(entry)
			ts = ts.Add(137 * time.Millisecond)
		}
		connCtr += conns
	}
	return h
}

// EmitPCAP renders one trace of the mobile platform as a decryptable pcapng
// capture: every connection is a TLS 1.3 flow whose application data holds
// the HTTP requests, with the key log embedded in a Decryption Secrets
// Block (the editcap --inject-secrets workflow). One additional flow per
// capture deliberately lacks key material, reproducing the paper's
// partially-encrypted mobile traces.
func (st *ServiceTraffic) EmitPCAP(trace flows.TraceCategory) (*pcapio.Capture, error) {
	return st.EmitPCAPAt(trace, baseTime)
}

// EmitPCAPAt is EmitPCAP with an explicit capture start time — the mobile
// counterpart of EmitHARAt's per-user variation (timestamps shift, TLS
// secrets and decrypted flows do not).
func (st *ServiceTraffic) EmitPCAPAt(trace flows.TraceCategory, start time.Time) (*pcapio.Capture, error) {
	capt := &pcapio.Capture{LinkType: pcapio.LinkRaw}
	clientIP := netip.MustParseAddr("10.215.173.1")
	var keylog strings.Builder
	ts := start
	connCtr := 0

	dnsIP := netip.MustParseAddr("8.8.8.8")
	writeFlow := func(fqdn string, wire []byte, withKeys bool) error {
		connCtr++
		srvIP := serverIP(fqdn)
		sport := uint16(40000 + connCtr%20000)
		seq := uint32(1000 * connCtr)

		// The DNS lookup that precedes the connection.
		if query, err := dnsx.EncodeQuery(uint16(connCtr), fqdn, dnsx.TypeA); err == nil {
			udp := &layers.UDP{SrcPort: uint16(30000 + connCtr%10000), DstPort: 53, Payload: query}
			ip := &layers.IPv4{
				TTL: 64, Protocol: layers.IPProtoUDP,
				Src: clientIP, Dst: dnsIP,
				Payload: udp.Encode(clientIP, dnsIP),
			}
			capt.Packets = append(capt.Packets, pcapio.Packet{Timestamp: ts, Data: ip.Encode()})
			ts = ts.Add(2 * time.Millisecond)
		}

		random := connRandom(st.Spec.Name, trace, connCtr)
		// Every fourth connection negotiates TLS 1.2, as mixed real-world
		// captures do; the rest are TLS 1.3.
		useTLS12 := connCtr%4 == 0

		addPkt := func(flags uint8, payload []byte) {
			capt.Packets = append(capt.Packets, pcapio.Packet{
				Timestamp: ts,
				Data:      layers.BuildTCPv4(clientIP, srvIP, sport, 443, seq, 0, flags, payload),
				OrigLen:   0,
			})
			if flags&layers.FlagSYN != 0 {
				seq++
			}
			seq += uint32(len(payload))
			ts = ts.Add(3 * time.Millisecond)
		}
		addSrvPkt := func(payload []byte) {
			capt.Packets = append(capt.Packets, pcapio.Packet{
				Timestamp: ts,
				Data:      layers.BuildTCPv4(srvIP, clientIP, 443, sport, uint32(5000*connCtr), 0, layers.FlagACK|layers.FlagPSH, payload),
				OrigLen:   0,
			})
			ts = ts.Add(3 * time.Millisecond)
		}

		addPkt(layers.FlagSYN, nil)
		var stream []byte
		if useTLS12 {
			serverRandom := connServerRandom(st.Spec.Name, trace, connCtr)
			masterSecret := connMasterSecret(st.Spec.Name, trace, connCtr)
			if withKeys {
				keylog.WriteString(tlsx.FormatLine(tlsx.LabelClientRandom, random[:], masterSecret))
			}
			stream = append(stream, tlsx.Record{
				Type:    tlsx.TypeHandshake,
				Payload: tlsx.BuildClientHello12(random, fqdn),
			}.Encode()...)
			// ServerHello travels in the reverse direction.
			addSrvPkt(tlsx.Record{
				Type:    tlsx.TypeHandshake,
				Payload: tlsx.BuildServerHello(serverRandom, 0x009C),
			}.Encode())
			sess, err := tlsx.NewSession12(masterSecret, random[:], serverRandom[:])
			if err != nil {
				return err
			}
			for off := 0; off < len(wire); {
				n := 4096
				if off+n > len(wire) {
					n = len(wire) - off
				}
				stream = append(stream, sess.Seal(tlsx.TypeApplicationData, wire[off:off+n])...)
				off += n
			}
		} else {
			secret := connSecret(st.Spec.Name, trace, connCtr)
			if withKeys {
				keylog.WriteString(tlsx.FormatLine(tlsx.LabelClientTraffic, random[:], secret))
			}
			stream = append(stream, tlsx.Record{
				Type:    tlsx.TypeHandshake,
				Payload: tlsx.BuildClientHello(random, fqdn),
			}.Encode()...)
			sess, err := tlsx.NewSession(secret)
			if err != nil {
				return err
			}
			// Split the wire bytes into records of at most 4KiB.
			for off := 0; off < len(wire); {
				n := 4096
				if off+n > len(wire) {
					n = len(wire) - off
				}
				stream = append(stream, sess.Seal(tlsx.TypeApplicationData, wire[off:off+n])...)
				off += n
			}
		}
		// Segment the stream into MTU-sized TCP payloads.
		for off := 0; off < len(stream); {
			n := 1400
			if off+n > len(stream) {
				n = len(stream) - off
			}
			addPkt(layers.FlagACK|layers.FlagPSH, stream[off:off+n])
			off += n
		}
		addPkt(layers.FlagFIN|layers.FlagACK, nil)
		return nil
	}

	for _, r := range st.Requests {
		if r.Trace != trace || r.Platform != flows.Mobile {
			continue
		}
		conns := r.Conns
		if conns < 1 {
			conns = 1
		}
		base, rem := r.Repeat/conns, r.Repeat%conns
		for c := 0; c < conns; c++ {
			repeat := base
			if c < rem {
				repeat++
			}
			if repeat == 0 {
				continue
			}
			var wire []byte
			for i := 0; i < repeat; i++ {
				wire = append(wire, httpWire(r)...)
			}
			if err := writeFlow(r.FQDN, wire, true); err != nil {
				return nil, err
			}
		}
	}

	// One opaque flow: encrypted traffic without key material, counted but
	// not decryptable (carries no planned data types).
	if len(st.Spec.FirstPartyESLDs) > 0 {
		opaque := &httpx.Request{
			Method:  "POST",
			Target:  "/opaque/blob",
			Headers: []httpx.Header{{Name: "Host", Value: "www." + st.Spec.FirstPartyESLDs[0]}},
			Body:    []byte(`{"blob":"ffffffff"}`),
		}
		if err := writeFlow("www."+st.Spec.FirstPartyESLDs[0], opaque.Encode(), false); err != nil {
			return nil, err
		}
	}

	if keylog.Len() > 0 {
		capt.Secrets = append(capt.Secrets, []byte(keylog.String()))
	}
	return capt, nil
}

// UserStart derives the deterministic capture start time of one synthetic
// user: user 0 is the canonical baseTime (emissions byte-identical to
// EmitHAR/EmitPCAP), every other user an FNV-seeded offset within the
// following two weeks. The seed depends only on the user index, so a
// population generated across any number of workers is reproducible
// file-for-file.
func UserStart(user int) time.Time {
	if user <= 0 {
		return baseTime
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "diffaudit-user-%d", user)
	offset := time.Duration(h.Sum64()%uint64(14*24*time.Hour/time.Millisecond)) * time.Millisecond
	return baseTime.Add(offset)
}

// httpWire renders the request as HTTP/1.1 bytes.
func httpWire(r *Request) []byte {
	body := bodyJSON(r.Body)
	target := r.Path
	for i, q := range r.Query {
		sep := "&"
		if i == 0 {
			sep = "?"
		}
		target += sep + q.Key + "=" + q.Value
	}
	req := &httpx.Request{
		Method: r.Method,
		Target: target,
		Headers: []httpx.Header{
			{Name: "Host", Value: r.FQDN},
			{Name: "User-Agent", Value: userAgent(flows.Mobile)},
			{Name: "Content-Type", Value: "application/json"},
		},
		Body: body,
	}
	if len(r.Cookies) > 0 {
		var parts []string
		for _, ck := range r.Cookies {
			parts = append(parts, ck.Key+"="+ck.Value)
		}
		sort.Strings(parts)
		req.Headers = append(req.Headers, httpx.Header{Name: "Cookie", Value: strings.Join(parts, "; ")})
	}
	return req.Encode()
}

// serverIP derives a stable address in the benchmarking range from an FQDN.
func serverIP(fqdn string) netip.Addr {
	h := sha256.Sum256([]byte(fqdn))
	return netip.AddrFrom4([4]byte{198, 18, h[0], h[1]})
}

// connRandom derives the deterministic TLS client random for a connection.
func connRandom(service string, trace flows.TraceCategory, conn int) [32]byte {
	h := sha256.New()
	fmt.Fprintf(h, "random/%s/%d/%d", service, trace, conn)
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// connSecret derives the deterministic TLS 1.3 traffic secret.
func connSecret(service string, trace flows.TraceCategory, conn int) []byte {
	h := sha256.New()
	fmt.Fprintf(h, "secret/%s/%d/%d", service, trace, conn)
	return h.Sum(nil)
}

// connServerRandom derives the deterministic TLS 1.2 server random.
func connServerRandom(service string, trace flows.TraceCategory, conn int) [32]byte {
	h := sha256.New()
	fmt.Fprintf(h, "server-random/%s/%d/%d", service, trace, conn)
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// connMasterSecret derives the deterministic TLS 1.2 master secret.
func connMasterSecret(service string, trace flows.TraceCategory, conn int) []byte {
	h := sha256.New()
	fmt.Fprintf(h, "master/%s/%d/%d/a", service, trace, conn)
	a := h.Sum(nil)
	h = sha256.New()
	fmt.Fprintf(h, "master/%s/%d/%d/b", service, trace, conn)
	return append(a, h.Sum(nil)[:16]...)
}
