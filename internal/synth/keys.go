package synth

import (
	"fmt"
	"strings"
	"sync"

	"diffaudit/internal/classifier"
	"diffaudit/internal/ontology"
)

// categoryKeys maps each observed level-3 category to the raw wire keys the
// synthesizer plants in request payloads, with a plausible sample value.
// Keys are chosen so that the production classifier (majority-avg ensemble
// at confidence 0.8) labels them into the intended category — the same
// property the paper engineers by validating its final labels manually.
var categoryKeys = map[string][]kv{
	"Name": {
		{"first_name", "alex"},
		{"last_name", "smith"},
		{"username", "player_one"},
		{"display_name", "Alex S"},
	},
	"Contact Information": {
		{"email", "user@example.com"},
		{"email_address", "user@example.com"},
		{"phone_number", "+19495550100"},
	},
	"Aliases": {
		{"user_id", "u_8842107"},
		{"uuid", "123e4567-e89b-12d3-a456-426614174000"},
		{"online_id", "oid_5521"},
		{"unique_id", "uq_99812"},
	},
	"Reasonably Linkable Personal Identifiers": {
		{"ip_address", "203.0.113.7"},
		{"client_ip", "203.0.113.7"},
	},
	"Login Information": {
		{"access_token", "eyJhbGciOi..."},
		{"auth_token", "tok_8812abc"},
		{"password", "hunter2"},
	},
	"Device Hardware Identifiers": {
		{"device_id", "dv-3311-8842"},
		{"android_id", "a1b2c3d4e5f67890"},
		{"device_serial_number", "SN-7733-XY"},
	},
	"Device Software Identifiers": {
		{"advertising_id", "cdda802e-fb9c-47ad-9866-0794d394c912"},
		{"idfa", "cdda802e-fb9c-47ad-9866-0794d394c912"},
		{"cookie_id", "ck_58812"},
		{"install_id", "ins_4471"},
	},
	"Device Information": {
		{"device_model", "Pixel 6"},
		{"os_version", "Android 13"},
		{"screen_resolution", "1080x2400"},
		{"user_agent", "Mozilla/5.0 (Linux; Android 13)"},
	},
	"Age": {
		{"birthday", "2011-04-02"},
		{"age", "12"},
		{"birth_year", "2011"},
	},
	"Language": {
		{"language", "en-US"},
		{"ui_language", "en"},
		{"learning_language", "es"},
	},
	"Gender/Sex": {
		{"gender", "f"},
	},
	"Coarse Geolocation": {
		{"country_code", "US"},
		{"city", "Irvine"},
		{"region", "CA"},
	},
	"Location Time": {
		{"timezone", "America/Los_Angeles"},
		{"timestamp", "1696258845123"},
		{"time_offset", "-0800"},
	},
	"Network Connection Information": {
		{"network_type", "wifi"},
		{"carrier", "TestTel"},
		{"request_protocol", "h2"},
		{"referer", "https://example.com/home"},
	},
	"Products and Advertising": {
		{"ad_unit", "banner_home_320x50"},
		{"campaign", "fall_promo_2023"},
		{"impression", "imp_776142"},
		{"ad_click", "btn_cta"},
	},
	"App or Service Usage": {
		{"watch_time", "3540"},
		{"scroll_event", "feed_main"},
		{"play_duration", "182"},
		{"usage_session", "sess-main"},
	},
	"Account Settings": {
		{"consent", "granted"},
		{"parental_controls", "enabled"},
		{"privacy_setting", "default"},
	},
	"Service Information": {
		{"app_version", "7.44.2"},
		{"sdk_version", "4.12.0"},
		{"api_endpoint", "/v2/events"},
	},
	"Inferences About Users": {
		{"interest_segment", "gaming_casual"},
		{"audience_segment", "seg_1142"},
		{"user_preferences", "dark_mode"},
	},
}

// kv is a raw key with a sample value.
type kv struct{ Key, Value string }

var (
	variantOnce sync.Once
	variantPool map[string][]kv
)

// variantKeys returns the full key pool for a category: the curated keys
// plus spelling variants derived from the ontology's level-4 examples
// (snake_case, camelCase, kebab-case), each admitted only if the production
// classifier (majority-avg ensemble at confidence 0.8) resolves it to the
// intended category. The pool is therefore self-validating: every planted
// key survives the paper's final labeling scheme.
func variantKeys(cat *ontology.Category) []kv {
	variantOnce.Do(buildVariantPools)
	pool := variantPool[cat.Name]
	if len(pool) == 0 {
		panic(fmt.Sprintf("synth: category %q has no classifiable keys", cat.Name))
	}
	return pool
}

func buildVariantPools() {
	variantPool = make(map[string][]kv)
	labeler := classifier.FinalLabeler()
	inPool := map[string]bool{}
	admit := func(cat *ontology.Category, candidate kv) {
		poolKey := cat.Name + "/" + candidate.Key
		if inPool[poolKey] {
			return
		}
		got, _, ok := labeler.Label(candidate.Key)
		if ok && got == cat {
			inPool[poolKey] = true
			variantPool[cat.Name] = append(variantPool[cat.Name], candidate)
		}
	}
	for name := range categoryKeys {
		cat, ok := ontology.Lookup(name)
		if !ok {
			panic("synth: key inventory references unknown category " + name)
		}
		for _, k := range categoryKeys[name] {
			admit(cat, k)
		}
		for _, ex := range cat.Examples {
			words := strings.Fields(strings.ToLower(ex))
			if len(words) == 0 || len(words) > 4 {
				continue
			}
			renders := []string{
				strings.Join(words, "_"),
				camelJoin(words),
				strings.Join(words, "-"),
				strings.Join(words, "."),
				strings.Join(words, ""),
			}
			seen := map[string]bool{}
			for _, r := range renders {
				if r == "" || seen[r] {
					continue
				}
				seen[r] = true
				admit(cat, kv{Key: r, Value: "sample-" + words[0]})
			}
		}
	}
}

func camelJoin(words []string) string {
	var b strings.Builder
	for i, w := range words {
		if i == 0 {
			b.WriteString(w)
			continue
		}
		if len(w) > 0 {
			b.WriteString(strings.ToUpper(w[:1]) + w[1:])
		}
	}
	return b.String()
}
